"""Tree-based collective communication algorithms.

These functions implement the classic algorithms behind the collective
operations the paper relies on (Section 3, "Collective Communication"):

* **binomial broadcast / reduction / gather** — ``ceil(log2 p)`` rounds, with
  every PE sending and receiving at most one message per round (the machine
  model is single-ported full-duplex);
* **butterfly all-reduction** — recursive doubling, with the standard fold-in
  step for non-power-of-two PE counts;
* **all-gather and prefix sums** built from the primitives above.

They operate on *per-PE value lists* (``values[i]`` is PE ``i``'s
contribution) because the whole machine is simulated inside one process.
Each function optionally reports every message it would send through the
``on_message`` callback so tests can verify message patterns, and returns
the number of communication rounds it used.

The functions are deliberately free of cost accounting — that is the job of
:class:`repro.network.communicator.SimComm` — so they can be unit-tested in
isolation.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.network.message import Message
from repro.network.topology import Topology

__all__ = [
    "payload_words",
    "binomial_broadcast",
    "binomial_reduce",
    "binomial_gather",
    "butterfly_allreduce",
    "butterfly_allgather",
    "hypercube_scan",
]

MessageCallback = Optional[Callable[[Message], None]]


def payload_words(value: object) -> float:
    """Best-effort estimate of the size of ``value`` in machine words."""
    if value is None:
        return 0.0
    size = getattr(value, "size", None)
    if size is not None and not isinstance(value, (str, bytes)):
        try:
            return float(size)
        except TypeError:  # pragma: no cover - exotic objects
            pass
    if isinstance(value, (list, tuple)):
        return float(len(value)) if value else 0.0
    return 1.0


def _emit(
    on_message: MessageCallback,
    src: int,
    dst: int,
    words: float,
    op: str,
    round_index: int,
) -> None:
    if on_message is not None and src != dst:
        on_message(Message(src=src, dst=dst, words=words, op=op, round_index=round_index))


# ---------------------------------------------------------------------------
# binomial tree collectives
# ---------------------------------------------------------------------------
def binomial_broadcast(
    values: Sequence[object],
    root: int,
    topology: Topology,
    *,
    words: Optional[float] = None,
    on_message: MessageCallback = None,
    op_name: str = "broadcast",
) -> Tuple[List[object], int]:
    """Broadcast ``values[root]`` to every PE along a binomial tree.

    Returns the new per-PE value list and the number of rounds.
    """
    p = topology.p
    root = topology.validate_rank(root)
    payload = values[root]
    if words is None:
        words = payload_words(payload)
    rounds = topology.rounds
    result = [payload for _ in range(p)]
    # Message pattern: relative rank ``rel`` receives from its parent in the
    # round indexed by ``rounds - 1 - lowest_set_bit(rel)``.
    for rank in range(p):
        rel = topology.relative_rank(rank, root)
        if rel == 0:
            continue
        parent = topology.binomial_parent(rank, root)
        bit = (rel & -rel).bit_length() - 1
        _emit(on_message, parent, rank, words, op_name, rounds - 1 - bit)
    return result, rounds


def binomial_reduce(
    values: Sequence[object],
    op: Callable[[object, object], object],
    root: int,
    topology: Topology,
    *,
    words: Optional[float] = None,
    on_message: MessageCallback = None,
    op_name: str = "reduce",
) -> Tuple[object, int]:
    """Reduce the per-PE values with ``op`` along a binomial tree.

    The reduction is performed in rank order within each subtree, so
    ``op`` need only be associative.  Returns ``(result_at_root, rounds)``.
    """
    p = topology.p
    root = topology.validate_rank(root)
    rounds = topology.rounds
    if words is None:
        words = max(payload_words(v) for v in values) if p else 0.0
    # accumulate children into parents bottom-up, round by round
    partial = list(values)
    for bit in range(rounds):
        for rank in range(p):
            rel = topology.relative_rank(rank, root)
            if rel == 0:
                continue
            low = (rel & -rel).bit_length() - 1
            if low == bit:
                parent = topology.binomial_parent(rank, root)
                _emit(on_message, rank, parent, words, op_name, bit)
                partial[parent] = op(partial[parent], partial[rank])
    return partial[root], rounds


def binomial_gather(
    values: Sequence[object],
    root: int,
    topology: Topology,
    *,
    words_per_pe: Optional[Sequence[float]] = None,
    on_message: MessageCallback = None,
    op_name: str = "gather",
) -> Tuple[List[object], int]:
    """Gather one value from every PE at ``root`` along a binomial tree.

    Returns ``(list_of_values_in_rank_order, rounds)``.  Message sizes grow
    towards the root, which is why the gather volume term is ``beta*p*l``
    rather than ``beta*l``.
    """
    p = topology.p
    root = topology.validate_rank(root)
    rounds = topology.rounds
    if words_per_pe is None:
        words_per_pe = [payload_words(v) for v in values]
    # Each rank accumulates (rank, value) pairs from its subtree.
    bucket: List[List[Tuple[int, object]]] = [[(rank, values[rank])] for rank in range(p)]
    weight: List[float] = [float(words_per_pe[rank]) for rank in range(p)]
    for bit in range(rounds):
        for rank in range(p):
            rel = topology.relative_rank(rank, root)
            if rel == 0:
                continue
            low = (rel & -rel).bit_length() - 1
            if low == bit:
                parent = topology.binomial_parent(rank, root)
                _emit(on_message, rank, parent, weight[rank], op_name, bit)
                bucket[parent].extend(bucket[rank])
                weight[parent] += weight[rank]
    gathered = sorted(bucket[root], key=lambda pair: pair[0])
    return [value for _, value in gathered], rounds


# ---------------------------------------------------------------------------
# butterfly collectives
# ---------------------------------------------------------------------------
def butterfly_allreduce(
    values: Sequence[object],
    op: Callable[[object, object], object],
    topology: Topology,
    *,
    words: Optional[float] = None,
    on_message: MessageCallback = None,
    op_name: str = "allreduce",
) -> Tuple[List[object], int]:
    """All-reduce via recursive doubling (butterfly exchange).

    Non-power-of-two PE counts use the standard fold-in: the excess ranks
    first send their contribution to a partner inside the largest power of
    two, the butterfly runs there, and the result is sent back.  ``op`` must
    be associative and commutative.
    """
    p = topology.p
    if words is None:
        words = max(payload_words(v) for v in values) if p else 0.0
    if p == 1:
        return list(values), 0
    core = 1 << (p.bit_length() - 1)  # largest power of two <= p
    extra = p - core
    partial = list(values)
    rounds = 0
    # fold-in round
    if extra:
        for rank in range(core, p):
            partner = rank - core
            _emit(on_message, rank, partner, words, op_name, rounds)
            partial[partner] = op(partial[partner], partial[rank])
        rounds += 1
    # butterfly among the core ranks
    bits = core.bit_length() - 1
    for bit in range(bits):
        for rank in range(core):
            partner = rank ^ (1 << bit)
            if partner < rank:
                continue
            _emit(on_message, rank, partner, words, op_name, rounds)
            _emit(on_message, partner, rank, words, op_name, rounds)
            combined = op(partial[rank], partial[partner])
            partial[rank] = combined
            partial[partner] = combined
        rounds += 1
    # fold-out round
    if extra:
        for rank in range(core, p):
            partner = rank - core
            _emit(on_message, partner, rank, words, op_name, rounds)
            partial[rank] = partial[partner]
        rounds += 1
    return partial, rounds


def butterfly_allgather(
    values: Sequence[object],
    topology: Topology,
    *,
    words_per_pe: Optional[Sequence[float]] = None,
    on_message: MessageCallback = None,
    op_name: str = "allgather",
) -> Tuple[List[List[object]], int]:
    """All-gather: every PE ends up with the list of all per-PE values.

    Power-of-two PE counts use recursive doubling; other counts fall back to
    a binomial gather followed by a broadcast (same asymptotic cost).
    """
    p = topology.p
    if words_per_pe is None:
        words_per_pe = [payload_words(v) for v in values]
    if p == 1:
        return [[values[0]]], 0
    if p & (p - 1) == 0:
        # recursive doubling: each rank maintains a dict rank -> value
        holdings: List[dict] = [{rank: values[rank]} for rank in range(p)]
        volume: List[float] = [float(words_per_pe[rank]) for rank in range(p)]
        rounds = 0
        bits = p.bit_length() - 1
        for bit in range(bits):
            for rank in range(p):
                partner = rank ^ (1 << bit)
                if partner < rank:
                    continue
                _emit(on_message, rank, partner, volume[rank], op_name, rounds)
                _emit(on_message, partner, rank, volume[partner], op_name, rounds)
                merged = dict(holdings[rank])
                merged.update(holdings[partner])
                holdings[rank] = merged
                holdings[partner] = dict(merged)
                new_volume = volume[rank] + volume[partner]
                volume[rank] = new_volume
                volume[partner] = new_volume
            rounds += 1
        result = [[holdings[rank][r] for r in range(p)] for rank in range(p)]
        return result, rounds
    gathered, gather_rounds = binomial_gather(
        values, 0, topology, words_per_pe=words_per_pe, on_message=on_message, op_name=op_name
    )
    # Shift the broadcast's round indices past the gather rounds so that the
    # combined trace still respects the single-ported model round by round.
    if on_message is None:
        shifted_callback = None
    else:
        def shifted_callback(message: Message) -> None:
            on_message(
                Message(
                    src=message.src,
                    dst=message.dst,
                    words=message.words,
                    op=message.op,
                    round_index=message.round_index + gather_rounds,
                    tag=message.tag,
                )
            )

    broadcasted, bcast_rounds = binomial_broadcast(
        [gathered] * p,
        0,
        topology,
        words=float(sum(words_per_pe)),
        on_message=shifted_callback,
        op_name=op_name,
    )
    return [list(v) for v in broadcasted], gather_rounds + bcast_rounds


def hypercube_scan(
    values: Sequence[object],
    op: Callable[[object, object], object],
    topology: Topology,
    *,
    words: Optional[float] = None,
    on_message: MessageCallback = None,
    op_name: str = "scan",
) -> Tuple[List[object], int]:
    """Inclusive prefix "sum" (scan) with ``op`` over the PE ranks.

    Uses the hypercube scan algorithm: in round ``i`` each PE exchanges its
    running aggregate with its partner across bit ``i`` and folds the
    partner's aggregate into the prefix if the partner has a lower rank.
    Non-power-of-two counts are handled by letting the missing partners sit
    out the round, which preserves correctness at the price of a slightly
    unbalanced schedule.
    """
    p = topology.p
    if words is None:
        words = max(payload_words(v) for v in values) if p else 0.0
    if p == 1:
        return list(values), 0
    prefix = list(values)  # inclusive prefix result per rank
    aggregate = list(values)  # aggregate of the rank's current hypercube group
    rounds = topology.rounds
    for bit in range(rounds):
        new_prefix = list(prefix)
        new_aggregate = list(aggregate)
        for rank in range(p):
            partner = rank ^ (1 << bit)
            if partner >= p:
                continue
            if rank < partner:
                _emit(on_message, rank, partner, words, op_name, bit)
            else:
                _emit(on_message, rank, partner, words, op_name, bit)
            combined = op(aggregate[min(rank, partner)], aggregate[max(rank, partner)])
            new_aggregate[rank] = combined
            if partner < rank:
                new_prefix[rank] = op(aggregate[partner], prefix[rank])
        prefix = new_prefix
        aggregate = new_aggregate
    return prefix, rounds

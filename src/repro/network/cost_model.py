"""Communication cost model and accounting ledger.

The paper expresses running times as ``O(x + beta*y + alpha*z)`` where ``x``
is local work, ``y`` communication volume (machine words) and ``z`` the
latency (number of message start-ups on the critical path).  The simulator
executes the real algorithms and *accounts* every collective operation here,
so that a full run yields both the exact communicated volume/message counts
and a simulated elapsed time under a configurable machine.

Default constants loosely follow a modern InfiniBand-class interconnect
(micro-seconds of latency, GB/s of bandwidth) similar to the ForHLR II
system used in the paper; the absolute values only set the scale, the
*ratio* of latency to local work is what shapes the scaling curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.utils.validation import check_positive

__all__ = ["CostParameters", "CommEvent", "CostLedger"]


@dataclass(frozen=True)
class CostParameters:
    """Machine constants of the communication model.

    Attributes
    ----------
    alpha:
        Time (seconds) to initiate a message transfer (start-up latency).
    beta:
        Time (seconds) to transfer a single machine word once the connection
        is established.
    word_bytes:
        Size of a machine word in bytes; only used for reporting volume in
        bytes, the cost formulas work in words.
    """

    alpha: float = 2.0e-6
    beta: float = 1.0e-9
    word_bytes: int = 8

    def __post_init__(self) -> None:
        check_positive(self.alpha, "alpha")
        check_positive(self.beta, "beta")
        if self.word_bytes <= 0:
            raise ValueError("word_bytes must be positive")

    # -- elementary costs ------------------------------------------------
    def message_time(self, words: float) -> float:
        """Time to send one point-to-point message of ``words`` words."""
        return self.alpha + self.beta * float(words)

    def collective_time(self, p: int, words: float) -> float:
        """Time of a broadcast/(all-)reduction of ``words`` words on ``p`` PEs.

        Matches the paper's ``O(beta*l + alpha*log p)`` bound for the
        pipelined / two-tree collective algorithms.
        """
        if p <= 1:
            return 0.0
        rounds = math.ceil(math.log2(p))
        return self.alpha * rounds + self.beta * float(words)

    def gather_time(self, p: int, words_per_pe: float) -> float:
        """Time of gathering ``words_per_pe`` words from each of ``p`` PEs.

        Matches the paper's ``O(beta*p*l + alpha*log p)`` bound: the root
        ultimately receives the full volume, the start-ups form a tree.
        """
        if p <= 1:
            return 0.0
        rounds = math.ceil(math.log2(p))
        return self.alpha * rounds + self.beta * float(words_per_pe) * p

    def scaled(self, *, alpha_factor: float = 1.0, beta_factor: float = 1.0) -> "CostParameters":
        """Return a copy with scaled constants (useful for sensitivity studies)."""
        return CostParameters(
            alpha=self.alpha * alpha_factor,
            beta=self.beta * beta_factor,
            word_bytes=self.word_bytes,
        )


@dataclass
class CommEvent:
    """A single accounted communication operation."""

    op: str
    phase: str
    p: int
    messages: int
    words: float
    rounds: int
    time: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "op": self.op,
            "phase": self.phase,
            "p": self.p,
            "messages": self.messages,
            "words": self.words,
            "rounds": self.rounds,
            "time": self.time,
        }


class CostLedger:
    """Accumulates :class:`CommEvent` records grouped by algorithm phase.

    The ledger is the ground truth for every communication-related number
    the benchmarks report: simulated communication time, message counts,
    volume, and the per-phase decomposition that reproduces Figure 6.
    """

    def __init__(self, keep_events: bool = True) -> None:
        self._keep_events = keep_events
        self.events: List[CommEvent] = []
        self._time_by_phase: Dict[str, float] = {}
        self._time_by_op: Dict[str, float] = {}
        self._messages = 0
        self._words = 0.0
        self._rounds = 0
        self._time = 0.0

    # -- recording -------------------------------------------------------
    def record(
        self,
        op: str,
        *,
        phase: str,
        p: int,
        messages: int,
        words: float,
        rounds: int,
        time: float,
    ) -> CommEvent:
        """Account one communication operation and return the event."""
        event = CommEvent(
            op=op,
            phase=phase,
            p=int(p),
            messages=int(messages),
            words=float(words),
            rounds=int(rounds),
            time=float(time),
        )
        if self._keep_events:
            self.events.append(event)
        self._time_by_phase[phase] = self._time_by_phase.get(phase, 0.0) + event.time
        self._time_by_op[op] = self._time_by_op.get(op, 0.0) + event.time
        self._messages += event.messages
        self._words += event.words
        self._rounds += event.rounds
        self._time += event.time
        return event

    # -- aggregate views ---------------------------------------------------
    @property
    def total_time(self) -> float:
        """Total simulated communication time (seconds)."""
        return self._time

    @property
    def total_messages(self) -> int:
        """Total number of point-to-point messages across all collectives."""
        return self._messages

    @property
    def total_words(self) -> float:
        """Total communicated volume in machine words."""
        return self._words

    @property
    def total_rounds(self) -> int:
        """Total number of communication rounds on the critical path."""
        return self._rounds

    def time_by_phase(self) -> Dict[str, float]:
        """Simulated communication time grouped by phase label."""
        return dict(self._time_by_phase)

    def time_by_op(self) -> Dict[str, float]:
        """Simulated communication time grouped by collective operation."""
        return dict(self._time_by_op)

    def events_for_phase(self, phase: str) -> List[CommEvent]:
        """All recorded events attributed to ``phase`` (requires keep_events)."""
        return [e for e in self.events if e.phase == phase]

    # -- bookkeeping -------------------------------------------------------
    def reset(self) -> None:
        """Clear all recorded events and aggregates."""
        self.events.clear()
        self._time_by_phase.clear()
        self._time_by_op.clear()
        self._messages = 0
        self._words = 0.0
        self._rounds = 0
        self._time = 0.0

    def merge(self, other: "CostLedger") -> None:
        """Fold the contents of ``other`` into this ledger."""
        for event in other.events:
            self.record(
                event.op,
                phase=event.phase,
                p=event.p,
                messages=event.messages,
                words=event.words,
                rounds=event.rounds,
                time=event.time,
            )
        if not other.events:
            # Aggregate-only merge when the other ledger dropped its events.
            self._messages += other._messages
            self._words += other._words
            self._rounds += other._rounds
            self._time += other._time
            for phase, t in other._time_by_phase.items():
                self._time_by_phase[phase] = self._time_by_phase.get(phase, 0.0) + t
            for op, t in other._time_by_op.items():
                self._time_by_op[op] = self._time_by_op.get(op, 0.0) + t

    def summary(self) -> Dict[str, object]:
        """A dictionary summary convenient for reporting and tests."""
        return {
            "time": self.total_time,
            "messages": self.total_messages,
            "words": self.total_words,
            "rounds": self.total_rounds,
            "time_by_phase": self.time_by_phase(),
            "time_by_op": self.time_by_op(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CostLedger(time={self.total_time:.3e}s, msgs={self.total_messages}, "
            f"words={self.total_words:.0f})"
        )

"""The :class:`Communicator` protocol shared by all execution backends.

The sampling algorithms in :mod:`repro.core` are SPMD programs driven from a
coordinator: the driver calls *collective operations* with one value per PE
and dispatches *per-PE local work* (key generation, reservoir insertions,
rank queries) through a small execution layer.  Everything the algorithms
need from an execution substrate is captured here:

* **collectives** — ``broadcast`` / ``reduce`` / ``allreduce`` / ``gather`` /
  ``allgather`` / ``scan`` / ``barrier`` plus point-to-point ``send``, all
  operating on per-PE value lists (``values[i]`` is PE ``i``'s
  contribution),
* **phase accounting** — every operation is attributed to the phase set via
  :meth:`Communicator.phase` (``"insert"``, ``"select"``, ...) in a
  :class:`~repro.network.cost_model.CostLedger`, which is how the
  running-time composition of the paper's Figure 6 is reconstructed,
* a **PE-state execution layer** — :meth:`Communicator.create_pe_state`
  installs one state object per PE (the local reservoir, the PE's random
  generator, optionally a stream shard) and :meth:`Communicator.run_per_pe`
  executes a kernel function against every PE's state.

Two backends implement the protocol:

* :class:`~repro.network.communicator.SimComm` keeps all ``p`` PEs inside
  the driver process and charges a *simulated* cost model — this is the
  paper-faithful cost simulator;
* :class:`~repro.network.process_comm.ProcessComm` runs each PE as a real
  ``multiprocessing`` worker; collectives are executed by the workers
  themselves over inter-process queues using the same binomial/butterfly
  schedules, and the ledger records *measured wall-clock* time.

Because both backends execute the exact same kernel functions against
per-PE states seeded the same way, a given seed produces **byte-identical
samples** under either backend (enforced by the equivalence tests).
"""

from __future__ import annotations

import abc
import contextlib
import functools
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from repro.network.cost_model import CostLedger
from repro.network.topology import Topology

__all__ = [
    "ReduceOp",
    "Communicator",
    "PEStateHandle",
    "PerPEFuture",
    "merge_smallest",
    "merge_largest",
    "make_communicator",
    "COMM_BACKENDS",
    "PAYLOAD_TRANSPORTS",
    "normalize_payload_transport",
]


@dataclass(frozen=True)
class ReduceOp:
    """An associative reduction operator usable in (all-)reductions.

    ``func`` must be picklable (a module-level function or a
    :func:`functools.partial` of one) so that reductions can be shipped to
    the worker processes of the multiprocess backend.
    """

    name: str
    func: Callable[[object, object], object]

    def __call__(self, a: object, b: object) -> object:
        return self.func(a, b)


def _sum(a, b):
    return a + b


def _max(a, b):
    return np.maximum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else max(a, b)


def _min(a, b):
    return np.minimum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else min(a, b)


def _merge_smallest_impl(limit: int, a, b) -> np.ndarray:
    merged = np.concatenate((np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)))
    merged.sort()
    return merged[:limit]


def _merge_largest_impl(limit: int, a, b) -> np.ndarray:
    merged = np.concatenate((np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)))
    merged.sort()
    return merged[-limit:] if limit < merged.shape[0] else merged


def merge_smallest(limit: int) -> ReduceOp:
    """Reduction keeping the ``limit`` smallest values of the union."""
    return ReduceOp(f"merge_smallest_{limit}", functools.partial(_merge_smallest_impl, limit))


def merge_largest(limit: int) -> ReduceOp:
    """Reduction keeping the ``limit`` largest values of the union."""
    return ReduceOp(f"merge_largest_{limit}", functools.partial(_merge_largest_impl, limit))


@dataclass(frozen=True)
class PEStateHandle:
    """Opaque handle to a group of per-PE states owned by a communicator."""

    group: int


class PerPEFuture:
    """Future-like handle to a per-PE kernel dispatched asynchronously.

    Returned by :meth:`Communicator.run_per_pe_async`.  :meth:`wait` blocks
    until every PE finished the kernel and returns the rank-ordered result
    list; calling it again returns the cached results.  :attr:`asynchronous`
    tells callers whether the kernel genuinely ran in the background
    (multiprocess backend) or was executed eagerly at dispatch time
    (simulated backend) — the pipelined drivers use this to decide between
    *measured* and *modeled* overlap accounting.
    """

    #: whether the kernel truly runs concurrently with the caller
    asynchronous: bool = False
    #: measured seconds the caller blocked in ``wait()`` (stays 0 for
    #: eagerly executed futures)
    wait_time: float = 0.0

    def __init__(self, results: Optional[List[object]] = None) -> None:
        self._results = results

    @property
    def done(self) -> bool:
        """Whether the results are already available without blocking."""
        return self._results is not None

    def wait(self) -> List[object]:
        """Block until all PEs finished; returns the per-PE results."""
        if self._results is None:
            raise RuntimeError("no results available; subclass must override wait()")
        return self._results


class Communicator(abc.ABC):
    """Execution backend over ``p`` PEs: collectives + per-PE local work.

    Subclasses must set :attr:`topology` (a
    :class:`~repro.network.topology.Topology`) and :attr:`ledger` (a
    :class:`~repro.network.cost_model.CostLedger`) in ``__init__`` and
    implement the abstract collective and execution-layer methods.
    """

    #: short backend identifier ("sim" or "process")
    kind: str = "abstract"

    SUM = ReduceOp("sum", _sum)
    MAX = ReduceOp("max", _max)
    MIN = ReduceOp("min", _min)

    topology: Topology
    ledger: CostLedger

    def __init__(self) -> None:
        from repro.obs.tracer import NULL_TRACER

        self._phase = "other"
        #: tracer the coordinator-side instrumentation emits to; the Null
        #: default makes every emission a no-op until a
        #: :class:`~repro.obs.collect.TraceCollector` attaches
        self.tracer = NULL_TRACER

    def drain_beats(self, *, replay_logs: bool = True) -> List[tuple]:
        """Pending heartbeat messages from the backend's beat transport.

        The base backend has none: the simulated communicator's inline
        kernels publish straight into the health monitor's local sink, so
        there is nothing to drain here.  The multiprocess backend
        overrides this with its beat-queue drain.  ``replay_logs=False``
        defers eagerly-forwarded worker log records to the caller
        (the monitor replays them itself).
        """
        return []

    # ------------------------------------------------------------------
    # structure and phase accounting
    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of PEs."""
        return self.topology.p

    @property
    def current_phase(self) -> str:
        """Phase label new communication is attributed to."""
        return self._phase

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all communication inside the block to phase ``name``.

        Doubles as the central tracing hook: every phase block becomes a
        span on the coordinator track of an attached trace collector.
        """
        previous = self._phase
        self._phase = name
        try:
            with self.tracer.span(name, cat="phase"):
                yield
        finally:
            self._phase = previous

    def _check_values(self, values: Sequence[object]) -> None:
        if len(values) != self.p:
            raise ValueError(
                f"expected one value per PE ({self.p}), got {len(values)}"
            )

    # ------------------------------------------------------------------
    # collectives (per-PE value lists; values[i] belongs to PE i)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def broadcast(
        self, values: Sequence[object], root: int = 0, *, words: Optional[float] = None
    ) -> List[object]:
        """Broadcast ``values[root]`` to all PEs; returns the per-PE list."""

    @abc.abstractmethod
    def reduce(
        self,
        values: Sequence[object],
        op: ReduceOp,
        root: int = 0,
        *,
        words: Optional[float] = None,
    ) -> object:
        """Reduce per-PE values with ``op``; the result is returned (logically at ``root``)."""

    @abc.abstractmethod
    def allreduce(
        self, values: Sequence[object], op: ReduceOp, *, words: Optional[float] = None
    ) -> List[object]:
        """All-reduce: every PE obtains the reduction of all contributions."""

    @abc.abstractmethod
    def gather(
        self,
        values: Sequence[object],
        root: int = 0,
        *,
        words_per_pe: Optional[Sequence[float]] = None,
    ) -> List[object]:
        """Gather one value from every PE; returns the rank-ordered list at ``root``."""

    @abc.abstractmethod
    def allgather(
        self, values: Sequence[object], *, words_per_pe: Optional[Sequence[float]] = None
    ) -> List[List[object]]:
        """All-gather: every PE obtains the rank-ordered list of all values."""

    @abc.abstractmethod
    def scan(
        self, values: Sequence[object], op: ReduceOp, *, words: Optional[float] = None
    ) -> List[object]:
        """Inclusive prefix reduction over PE ranks."""

    @abc.abstractmethod
    def barrier(self) -> None:
        """Synchronise all PEs."""

    @abc.abstractmethod
    def send(self, src: int, dst: int, value: object, *, words: Optional[float] = None) -> object:
        """Send ``value`` from PE ``src`` to PE ``dst`` and return it."""

    # ------------------------------------------------------------------
    # PE-state execution layer
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def create_pe_state(
        self,
        factory: Callable[..., object],
        per_pe_args: Optional[Sequence[Sequence[object]]] = None,
    ) -> PEStateHandle:
        """Create one state object per PE by calling ``factory(pe, *args)``.

        ``factory`` and the argument tuples must be picklable for the
        multiprocess backend; the canonical factory is
        :func:`repro.core.pe_kernels.make_pe_state`.  Returns a handle to
        pass to :meth:`run_per_pe` / :meth:`run_on_pe`.
        """

    @abc.abstractmethod
    def run_per_pe(
        self,
        handle: PEStateHandle,
        fn: Callable[..., object],
        per_pe_args: Optional[Sequence[Sequence[object]]] = None,
    ) -> List[object]:
        """Run ``fn(state_pe, *per_pe_args[pe])`` on every PE, in parallel
        where the backend allows it; returns the per-PE results in rank
        order."""

    def run_per_pe_async(
        self,
        handle: PEStateHandle,
        fn: Callable[..., object],
        per_pe_args: Optional[Sequence[Sequence[object]]] = None,
    ) -> PerPEFuture:
        """Dispatch ``fn`` to every PE without waiting for the results.

        Returns a :class:`PerPEFuture`; ``wait()`` yields the same per-PE
        result list :meth:`run_per_pe` would have returned.  The default
        implementation executes the kernel eagerly and returns an
        already-completed future (``asynchronous = False``) — backends with
        real concurrency (the multiprocess backend) override this to run
        the kernel in the background while the caller keeps issuing
        collectives against the *same* PEs.  Kernels dispatched this way
        must not touch state slots that concurrently running kernels or
        collectives read (the pipelined prepare kernels only use the
        stream shard and the dedicated generation RNG for this reason).
        """
        return PerPEFuture(self.run_per_pe(handle, fn, per_pe_args))

    @abc.abstractmethod
    def run_on_pe(self, handle: PEStateHandle, pe: int, fn: Callable[..., object], *args) -> object:
        """Run ``fn(state_pe, *args)`` on one PE and return its result."""

    def local_pe_state(self, handle: PEStateHandle, pe: int) -> object:
        """Direct access to a PE's state object.

        Only the simulated backend can hand out the actual object; the
        multiprocess backend raises because the state lives in a worker.
        """
        raise NotImplementedError(
            f"{type(self).__name__} cannot expose PE-local state objects; "
            "use run_on_pe()/run_per_pe() to operate on them"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Release backend resources (worker processes, queues).  Idempotent."""

    def __enter__(self) -> "Communicator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


#: registry of communicator backend names accepted by :func:`make_communicator`
COMM_BACKENDS = ("sim", "process")

#: payload transports of the multiprocess backend: ``"pickle"`` serialises
#: every payload through the queues/pipes; ``"shm"`` routes large numpy
#: arrays through reusable :mod:`multiprocessing.shared_memory` segments
#: (descriptor-passed, see :mod:`repro.network.shm_ring`) and keeps small
#: payloads on the pickle path (auto-selected per payload by a size
#: threshold, ``shm_min_bytes``)
PAYLOAD_TRANSPORTS = ("pickle", "shm")


def normalize_payload_transport(transport: str) -> str:
    """Validate and canonicalise a ``payload_transport=`` argument."""
    name = str(transport).strip().lower()
    if name not in PAYLOAD_TRANSPORTS:
        raise ValueError(
            f"unknown payload transport {transport!r}; expected one of {PAYLOAD_TRANSPORTS}"
        )
    return name


def make_communicator(kind: str, p: int, **kwargs) -> Communicator:
    """Create a communicator backend by name.

    Parameters
    ----------
    kind:
        ``"sim"`` for the single-process cost simulator
        (:class:`~repro.network.communicator.SimComm`) or ``"process"`` for
        the real multiprocess backend
        (:class:`~repro.network.process_comm.ProcessComm`).
    p:
        Number of PEs.
    kwargs:
        Forwarded to the backend constructor (e.g. ``cost=`` for the
        simulator; ``start_method=``, ``payload_transport="pickle"|"shm"``
        and ``shm_min_bytes=`` for the process backend).
    """
    name = kind.strip().lower()
    if name in ("sim", "simulated", "simcomm"):
        from repro.network.communicator import SimComm

        return SimComm(p, **kwargs)
    if name in ("process", "multiprocess", "processcomm", "mp"):
        from repro.network.process_comm import ProcessComm

        return ProcessComm(p, **kwargs)
    raise ValueError(f"unknown communicator backend {kind!r}; expected one of {COMM_BACKENDS}")

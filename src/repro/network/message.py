"""Message records for the simulated network.

The collectives can optionally log every point-to-point message they would
issue on a real machine.  Tests use these traces to verify that the message
patterns match the textbook algorithms (binomial trees, butterflies) and
that the per-collective message counts equal the analytic values the cost
model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

__all__ = ["Message", "MessageTrace"]


@dataclass(frozen=True)
class Message:
    """A single simulated point-to-point message."""

    src: int
    dst: int
    words: float
    op: str = ""
    round_index: int = 0
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("a PE does not send messages to itself")
        if self.words < 0:
            raise ValueError("message size must be non-negative")


class MessageTrace:
    """An append-only log of simulated messages with simple query helpers."""

    def __init__(self) -> None:
        self.messages: List[Message] = []

    def add(self, message: Message) -> None:
        self.messages.append(message)

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self.messages)

    def clear(self) -> None:
        self.messages.clear()

    # -- queries -----------------------------------------------------------
    def count_for_op(self, op: str) -> int:
        """Number of messages attributed to collective ``op``."""
        return sum(1 for m in self.messages if m.op == op)

    def words_for_op(self, op: str) -> float:
        """Total words attributed to collective ``op``."""
        return sum(m.words for m in self.messages if m.op == op)

    def sends_per_rank(self) -> Dict[int, int]:
        """How many messages each rank sent."""
        out: Dict[int, int] = {}
        for m in self.messages:
            out[m.src] = out.get(m.src, 0) + 1
        return out

    def receives_per_rank(self) -> Dict[int, int]:
        """How many messages each rank received."""
        out: Dict[int, int] = {}
        for m in self.messages:
            out[m.dst] = out.get(m.dst, 0) + 1
        return out

    def max_messages_per_rank_per_round(self) -> int:
        """Largest number of sends (or receives) of any rank in any round.

        The machine model is single-ported: in a given communication round a
        PE may send at most one and receive at most one message.  The
        collectives are built to respect this; the trace lets tests check it.
        """
        sends: Dict[tuple, int] = {}
        recvs: Dict[tuple, int] = {}
        for m in self.messages:
            sends[(m.op, m.round_index, m.src)] = sends.get((m.op, m.round_index, m.src), 0) + 1
            recvs[(m.op, m.round_index, m.dst)] = recvs.get((m.op, m.round_index, m.dst), 0) + 1
        worst = 0
        for counter in (sends, recvs):
            if counter:
                worst = max(worst, max(counter.values()))
        return worst

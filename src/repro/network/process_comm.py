"""Real multiprocess execution backend (:class:`ProcessComm`).

This is the second implementation of the
:class:`~repro.network.base.Communicator` protocol: every PE is a real
``multiprocessing`` worker process that owns its PE-local state (reservoir,
random generator, stream shard) and executes the same kernel functions the
simulated backend runs inline.

Communication layout
--------------------
* One duplex :func:`multiprocessing.Pipe` per worker carries *commands*
  from the coordinator (create state, run a kernel, participate in a
  collective) and their results back.
* One :class:`multiprocessing.Queue` per worker is its *inbox* for
  worker-to-worker messages.  Collectives are executed **by the workers
  themselves**: each rank follows the same binomial-tree / butterfly /
  hypercube schedule as the simulated algorithms in
  :mod:`repro.network.collectives` (parents/children/partners come from the
  shared :class:`~repro.network.topology.Topology`), sending pickled numpy
  payloads into its peers' inboxes.

Because the worker-side algorithms apply the reduction operator in exactly
the same order as their simulated counterparts, a reduction over floats
produces bit-identical results under both backends — which is what makes
the end-to-end sampler equivalence tests byte-exact.

The ledger records **measured wall-clock seconds** per operation (instead
of the simulated machine model), attributed to the current phase, so the
same Figure-6-style composition reports work for real executions.

Payload transports
------------------
``payload_transport="pickle"`` (default) serialises every payload through
the queues and pipes.  ``payload_transport="shm"`` routes large numpy
arrays through reusable shared-memory segments instead: every endpoint
(coordinator and workers) owns a :class:`~repro.network.shm_ring.ShmRing`,
arrays of at least ``shm_min_bytes`` travel as tiny
:class:`~repro.network.shm_ring.ShmDescriptor` control tuples, and the
receiver copies them out of the segment directly — no pickling, no pipe
buffering.  This cuts the gather cost of the centralized baseline and the
batch shipping of ``process_round(batches)``; samples are byte-identical
under both transports because only the transport changes, never the
values.

Fault handling and recovery
---------------------------
Worker exceptions are caught, serialised (type + traceback text) and
re-raised in the coordinator as :class:`WorkerError`.  Workers ignore
``SIGINT`` so a ``KeyboardInterrupt`` unwinds in the coordinator only,
whose ``shutdown()`` (also invoked by the context manager and ``atexit``)
terminates and joins every worker — no orphan processes are left behind.
Workers are daemonic as a last line of defence.

A worker that *dies* (SIGKILL, OOM, ``os._exit``) is detected through its
process sentinel while the coordinator waits for replies — not after a
timeout — and the coordinator immediately posts **abort sentinels** into
every inbox so peers blocked inside a half-finished collective unwind
with :class:`PeerAbort` in milliseconds instead of waiting out their
mailbox timeout.  :meth:`ProcessComm.recover` then respawns the dead
ranks, sweeps the shared-memory segments their dead incarnations leaked,
replays every recorded ``create_pe_state`` on the fresh processes and
bumps the communicator **epoch**: every inter-worker message carries the
epoch it was sent under, and messages from a previous epoch are silently
dropped, so no stale in-flight payload from before the failure can be
confused with post-recovery traffic.  Restoring the actual sampler state
and replaying the stream is the driver's job (see
:mod:`repro.checkpoint`).

For tests, :class:`FaultSpec` injects one deterministic failure into one
worker: die inside a kernel, drop one inter-worker send, or delay one
reply.
"""

from __future__ import annotations

import atexit
import dataclasses
import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import queue as queue_module
import secrets
import signal
import threading
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.network import collectives
from repro.network.base import (
    Communicator,
    PEStateHandle,
    PerPEFuture,
    ReduceOp,
    normalize_payload_transport,
)
from repro.network.cost_model import CostLedger
from repro.obs.health import (
    drain_beat_messages,
    register_worker_beat_queue,
    set_worker_beat_epoch,
    worker_wait_beat,
)
from repro.obs.log import (
    drain_worker_log_records,
    get_logger,
    install_worker_log_buffer,
    replay_worker_records,
    set_worker_log_epoch,
)
from repro.obs.tracer import NULL_TRACER, process_tracer, set_process_tracer
from repro.network.shm_ring import (
    DEFAULT_SHM_MIN_BYTES,
    ShmAttachmentCache,
    ShmRing,
    decode_payload,
    encode_payload,
    sweep_named_segments,
)
from repro.network.topology import Topology

__all__ = ["ProcessComm", "WorkerError", "PeerAbort", "FaultSpec", "default_start_method"]

#: shared-memory segment name stem; full worker prefixes are
#: ``reprshm_<token>_r<rank>e<epoch>_<serial>`` so a recovery sweep can
#: target exactly one communicator (token) and one rank without ever
#: touching a live peer's segments.
SHM_NAME_STEM = "reprshm"

#: ``src`` value of an abort sentinel in a worker inbox (no real rank is
#: negative); receiving one at the current or a newer epoch raises
#: :class:`PeerAbort`.
ABORT_SRC = -1

_logger = get_logger("network.process_comm")


class WorkerError(RuntimeError):
    """One or more worker processes raised while executing a command."""

    def __init__(self, failures: Sequence[Tuple[int, str, str]]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} worker(s) failed:"]
        for rank, exc_repr, tb in self.failures:
            lines.append(f"  [rank {rank}] {exc_repr}")
            if tb:
                lines.append("    " + "\n    ".join(tb.strip().splitlines()))
        super().__init__("\n".join(lines))


class PeerAbort(RuntimeError):
    """Raised inside a worker when the coordinator aborts a collective.

    The coordinator posts abort sentinels after detecting a peer failure;
    a worker blocked in ``recv`` unwinds immediately, reports the abort
    through its command pipe like any other kernel error, and keeps
    serving commands — it is a victim of the failure, not its cause.
    """


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One deterministic injected failure for the fault-injection tests.

    Parameters
    ----------
    rank:
        Worker rank the fault is installed on.
    action:
        ``"die_in_kernel"`` — ``os._exit(1)`` at the start of a command,
        simulating a SIGKILL/OOM mid-round; ``"drop_send"`` — silently
        swallow the worker's next inter-worker message, simulating a lost
        packet (peers unwind via their mailbox timeout, no process dies);
        ``"delay_reply"`` — sleep ``seconds`` before executing a command,
        simulating a straggler (the run must complete without recovery).
    after_calls:
        How many kernel/collective commands run normally before the fault
        fires (``0`` = the first one).  ``init_state`` and lifecycle
        commands never count.
    seconds:
        Sleep duration for ``"delay_reply"``.
    """

    rank: int
    action: str
    after_calls: int = 0
    seconds: float = 0.05

    _ACTIONS = ("die_in_kernel", "drop_send", "delay_reply")

    def __post_init__(self) -> None:
        if self.action not in self._ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; expected one of {self._ACTIONS}")
        if self.rank < 0:
            raise ValueError(f"fault rank must be non-negative, got {self.rank}")
        if self.after_calls < 0:
            raise ValueError(f"after_calls must be non-negative, got {self.after_calls}")


def default_start_method() -> str:
    """``"fork"`` where available (fast, inherits the parent's modules),
    otherwise ``"spawn"``."""
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


# ---------------------------------------------------------------------------
# payload transport
# ---------------------------------------------------------------------------
class _PayloadCodec:
    """Per-endpoint payload encoder/decoder for one transport.

    With the ``"pickle"`` transport both directions are the identity.  With
    ``"shm"`` the endpoint owns a send-side :class:`ShmRing` (created
    lazily) and a receive-side :class:`ShmAttachmentCache`; ``encode``
    replaces large arrays with descriptors into the ring and ``decode``
    resolves descriptors received from any peer.
    """

    def __init__(self, transport: str, min_bytes: int, *, segment_prefix: Optional[str] = None) -> None:
        self.transport = transport
        self.min_bytes = int(min_bytes)
        self._ring = ShmRing(name_prefix=segment_prefix) if transport == "shm" else None
        self._cache = ShmAttachmentCache() if transport == "shm" else None

    @property
    def ring(self) -> Optional[ShmRing]:
        return self._ring

    def encode(self, value: object) -> object:
        if self._ring is None:
            return value
        return encode_payload(value, self._ring, self.min_bytes)

    def decode(self, value: object) -> object:
        if self._cache is None:
            return value
        return decode_payload(value, self._cache)

    def forget_attachments(self) -> None:
        """Drop cached attachments to peer segments (they may be gone).

        Called after a recovery: the dead incarnation's segments were
        swept, so any cached attachment to them must not be reused.  The
        cache re-attaches on demand; correctness is unaffected.
        """
        if self._cache is not None:
            self._cache.close()

    def close(self, *, unlink_attached: bool = False) -> None:
        """Drop attachments and unlink this endpoint's segments.  Idempotent.

        ``unlink_attached=True`` additionally best-effort-unlinks the
        *attached* (peer-owned) segments — the coordinator uses it when a
        worker had to be terminated and cannot run its own teardown.
        """
        if self._cache is not None:
            if unlink_attached:
                self._cache.unlink_all()
            else:
                self._cache.close()
        if self._ring is not None:
            self._ring.destroy()


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
class _Mailbox:
    """Receive-side of a worker's inbox with out-of-order stashing.

    Messages are tagged ``(seq, src, epoch)``.  Within one collective (one
    ``seq``) a rank may receive from several peers whose messages can
    interleave arbitrarily in the queue; messages for a later collective
    can also arrive while this rank is still draining the current one.
    ``recv`` returns the requested message and stashes everything else.

    Payloads are decoded (shared-memory descriptors resolved) the moment
    they leave the queue — *before* any stashing — so the sender's ring
    slots are released promptly no matter how far out of order the
    messages arrived.

    Two failure-path rules keep recovery sound:

    * a message whose epoch is **older** than the mailbox's is a leftover
      from before a recovery — it is dropped (its payload best-effort
      decoded only to release the sender's ring slot);
    * an **abort sentinel** (``src == ABORT_SRC``) at the current or a
      newer epoch raises :class:`PeerAbort`, unwinding a rank blocked in
      a collective whose peer died.
    """

    def __init__(self, queue, timeout: float, codec: _PayloadCodec, *, epoch: int = 0) -> None:
        self._queue = queue
        self._timeout = timeout
        self._codec = codec
        self.epoch = int(epoch)
        self._stash: Dict[Tuple[int, int], object] = {}

    def _decode_for_release(self, payload: object) -> None:
        # a dropped payload may reference segments of a dead worker; decode
        # only to release live ring slots, and ignore segments that are gone
        try:
            self._codec.decode(payload)
        except Exception:
            pass

    def recv(self, seq: int, src: int) -> object:
        key = (seq, src)
        if key in self._stash:
            return self._stash.pop(key)
        tracer = process_tracer()
        if tracer.enabled:
            with tracer.span("mailbox.wait", cat="comm", seq=seq, src=src):
                payload = self._recv_blocking(seq, src, key)
            tracer.counter("mailbox.stash", len(self._stash), cat="comm")
            return payload
        return self._recv_blocking(seq, src, key)

    #: poll slice of the blocking receive; bounds the wait-beat cadence
    WAIT_SLICE = 0.25

    def _recv_blocking(self, seq: int, src: int, key: Tuple[int, int]) -> object:
        deadline = time.monotonic() + self._timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"timed out waiting for message (seq={seq}, src={src}); "
                    "a peer worker likely died or raised"
                )
            try:
                msg_seq, msg_src, msg_epoch, payload = self._queue.get(
                    timeout=min(remaining, self.WAIT_SLICE)
                )
            except queue_module.Empty:
                # still waiting on a peer: prove to the watchdog that this
                # rank is blocked, not stuck — the peer that fails to send
                # these is the stall culprit (see repro.obs.health)
                worker_wait_beat()
                # loop back so the deadline check raises the descriptive
                # TimeoutError instead of a bare queue.Empty killing the
                # worker without a diagnosis
                continue
            if msg_epoch < self.epoch:  # stale: sent before the last recovery
                self._decode_for_release(payload)
                continue
            if msg_src == ABORT_SRC:
                raise PeerAbort(
                    f"collective aborted by the coordinator (epoch {msg_epoch}); "
                    "a peer worker died or failed"
                )
            payload = self._codec.decode(payload)
            if (msg_seq, msg_src) == key:
                return payload
            self._stash[(msg_seq, msg_src)] = payload

    def flush(self, new_epoch: int) -> None:
        """Adopt ``new_epoch``: drop the stash and drain queued messages.

        The epoch filter in :meth:`recv` remains the correctness backstop
        for any message still in flight behind the queue's feeder thread.
        """
        self.epoch = int(new_epoch)
        self._stash.clear()
        while True:
            try:
                _seq, _src, _epoch, payload = self._queue.get_nowait()
            except (queue_module.Empty, OSError, ValueError):
                break
            self._decode_for_release(payload)


class _WorkerNet:
    """Rank-local collective algorithms over the inter-worker inboxes.

    Each method mirrors the per-PE-value-list algorithm of the same name in
    :mod:`repro.network.collectives` — same tree shapes, same reduction
    order — executed from the perspective of one rank.
    """

    def __init__(
        self,
        rank: int,
        topology: Topology,
        inboxes,
        mailbox: _Mailbox,
        codec: _PayloadCodec,
    ) -> None:
        self.rank = rank
        self.topology = topology
        self.inboxes = inboxes
        self.mailbox = mailbox
        self.codec = codec
        self._drop_next_send = False

    @property
    def p(self) -> int:
        return self.topology.p

    def drop_next_send(self) -> None:
        """Fault injection: silently swallow the next outgoing message."""
        self._drop_next_send = True

    def _send(self, seq: int, dst: int, payload: object) -> None:
        if self._drop_next_send:
            self._drop_next_send = False
            return
        self.inboxes[dst].put((seq, self.rank, self.mailbox.epoch, self.codec.encode(payload)))

    # -- binomial tree ----------------------------------------------------
    def broadcast(self, seq: int, value: object, root: int) -> object:
        if self.p == 1:
            return value
        topo = self.topology
        rel = topo.relative_rank(self.rank, root)
        if rel != 0:
            value = self.mailbox.recv(seq, topo.binomial_parent(self.rank, root))
        for child in topo.binomial_children(self.rank, root):
            self._send(seq, child, value)
        return value

    def reduce(self, seq: int, value: object, op: ReduceOp, root: int) -> object:
        if self.p == 1:
            return value
        topo = self.topology
        rel = topo.relative_rank(self.rank, root)
        partial = value
        # Children attach at ascending bit positions; receiving in that
        # order reproduces the simulated algorithm's reduction order.
        for child in reversed(topo.binomial_children(self.rank, root)):
            partial = op(partial, self.mailbox.recv(seq, child))
        if rel != 0:
            self._send(seq, topo.binomial_parent(self.rank, root), partial)
            return None
        return partial

    def gather(self, seq: int, value: object, root: int) -> Optional[List[object]]:
        if self.p == 1:
            return [value]
        topo = self.topology
        rel = topo.relative_rank(self.rank, root)
        pairs: List[Tuple[int, object]] = [(self.rank, value)]
        for child in reversed(topo.binomial_children(self.rank, root)):
            pairs.extend(self.mailbox.recv(seq, child))
        if rel != 0:
            self._send(seq, topo.binomial_parent(self.rank, root), pairs)
            return None
        pairs.sort(key=lambda pair: pair[0])
        return [v for _, v in pairs]

    # -- butterfly --------------------------------------------------------
    def allreduce(self, seq: int, value: object, op: ReduceOp) -> object:
        p, rank = self.p, self.rank
        if p == 1:
            return value
        core = 1 << (p.bit_length() - 1)  # largest power of two <= p
        extra = p - core
        partial = value
        # fold-in: excess ranks contribute to a partner inside the core
        if extra and rank >= core:
            self._send(seq, rank - core, partial)
        elif extra and rank < extra:
            partial = op(partial, self.mailbox.recv(seq, rank + core))
        # butterfly among the core ranks (combine lower-rank value first,
        # matching collectives.butterfly_allreduce)
        if rank < core:
            for bit in range(core.bit_length() - 1):
                partner = rank ^ (1 << bit)
                self._send(seq, partner, partial)
                other = self.mailbox.recv(seq, partner)
                partial = op(partial, other) if rank < partner else op(other, partial)
        # fold-out: send the result back to the excess ranks
        if extra and rank < extra:
            self._send(seq, rank + core, partial)
        elif extra and rank >= core:
            partial = self.mailbox.recv(seq, rank - core)
        return partial

    def allgather(self, seq: int, value: object) -> List[object]:
        p, rank = self.p, self.rank
        if p == 1:
            return [value]
        if p & (p - 1) == 0:
            holdings: Dict[int, object] = {rank: value}
            for bit in range(p.bit_length() - 1):
                partner = rank ^ (1 << bit)
                self._send(seq, partner, holdings)
                received = self.mailbox.recv(seq, partner)
                merged = dict(holdings)
                merged.update(received)
                holdings = merged
            return [holdings[r] for r in range(p)]
        # non-power-of-two: binomial gather at rank 0, then broadcast
        gathered = self.gather(seq, value, root=0)
        return self.broadcast(seq, gathered, root=0)

    def scan(self, seq: int, value: object, op: ReduceOp) -> object:
        p, rank = self.p, self.rank
        if p == 1:
            return value
        prefix = value
        aggregate = value
        for bit in range(self.topology.rounds):
            partner = rank ^ (1 << bit)
            if partner >= p:
                continue
            self._send(seq, partner, aggregate)
            other = self.mailbox.recv(seq, partner)
            combined = op(aggregate, other) if rank < partner else op(other, aggregate)
            if partner < rank:
                prefix = op(other, prefix)
            aggregate = combined
        return prefix

    # -- point-to-point ---------------------------------------------------
    def p2p(self, seq: int, src: int, dst: int, value: object) -> object:
        if self.rank == src and src != dst:
            self._send(seq, dst, value)
            return value
        if self.rank == dst and src != dst:
            return self.mailbox.recv(seq, src)
        return value


def _worker_main(
    rank: int,
    p: int,
    conn,
    inboxes,
    mailbox_timeout: float,
    payload_transport: str = "pickle",
    shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES,
    segment_prefix: Optional[str] = None,
    epoch: int = 0,
    fault: Optional[FaultSpec] = None,
    beat_queue=None,
) -> None:
    """Command loop of one worker process."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main-thread start
        pass
    # fork hygiene: a forked worker inherits the coordinator's process
    # tracer object but must not write into it (the buffer would be lost
    # with the child); tracing is re-enabled per-rank by the collector's
    # install kernel.  Log records, by contrast, are always buffered so
    # the coordinator can forward them over the command pipe.
    set_process_tracer(NULL_TRACER)
    install_worker_log_buffer(rank, epoch=epoch)
    if beat_queue is not None:
        # heartbeat transport (mp.Queue inherited at spawn — queues cannot
        # travel over the command pipe); also wires the eager ≥WARNING log
        # forwarder so crash context survives this process dying
        register_worker_beat_queue(beat_queue, rank, epoch)
    _logger.debug("worker rank %d (pid %d) online at epoch %d", rank, os.getpid(), epoch)
    topology = Topology(p)
    codec = _PayloadCodec(payload_transport, shm_min_bytes, segment_prefix=segment_prefix)
    mailbox = _Mailbox(inboxes[rank], mailbox_timeout, codec, epoch=epoch)
    net = _WorkerNet(rank, topology, inboxes, mailbox, codec)
    states: Dict[int, object] = {}
    async_jobs: Dict[int, Tuple[threading.Thread, dict]] = {}
    fault_calls = 0
    while True:
        try:
            # poll in slices so a rank idling between commands (its reply
            # is in, peers are still working) keeps proving liveness to
            # the watchdog instead of looking as silent as a stuck peer
            while not conn.poll(_Mailbox.WAIT_SLICE):
                worker_wait_beat("idle")
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        kind = msg[0]
        if kind == "exit":
            break
        if fault is not None and kind in ("run", "run_async", "coll"):
            triggered = fault_calls == fault.after_calls
            fault_calls += 1
            if triggered:
                if fault.action == "die_in_kernel":
                    # simulate SIGKILL/OOM: no teardown, no reply, hard exit
                    os._exit(1)
                elif fault.action == "delay_reply":
                    time.sleep(fault.seconds)
                elif fault.action == "drop_send":
                    net.drop_next_send()
        tracer = process_tracer()
        cmd_span = tracer.span("cmd." + str(kind), cat="comm") if tracer.enabled else None
        if cmd_span is not None:
            cmd_span.__enter__()
        try:
            if kind == "init_state":
                _, group, factory, args = msg
                states[group] = factory(rank, *codec.decode(args))
                conn.send(("ok", None))
            elif kind == "run":
                _, group, fn, args = msg
                conn.send(("ok", codec.encode(fn(states[group], *codec.decode(args)))))
            elif kind == "run_async":
                # Execute the kernel in a background thread so this loop can
                # keep serving collectives and other kernels against the
                # same state group.  The acknowledgement goes out as soon as
                # the thread is running; the result travels with the
                # matching "join_async" command.
                _, group, tag, fn, args = msg
                args = codec.decode(args)
                box: dict = {}
                state = states[group]

                def _async_body(fn=fn, state=state, args=args, box=box):
                    try:
                        box["reply"] = ("ok", fn(state, *args))
                    except BaseException as exc:
                        box["reply"] = ("err", repr(exc), traceback.format_exc())

                thread = threading.Thread(
                    target=_async_body, name=f"repro-pe-{rank}-async-{tag}", daemon=True
                )
                thread.start()
                async_jobs[tag] = (thread, box)
                conn.send(("ok", None))
            elif kind == "join_async":
                _, tag = msg
                thread, box = async_jobs.pop(tag)
                thread.join()
                reply = box.get("reply", ("err", "RuntimeError('async kernel vanished')", ""))
                if reply[0] == "ok":
                    # encode on the main thread: the ring is not thread-safe
                    reply = ("ok", codec.encode(reply[1]))
                conn.send(reply)
            elif kind == "coll":
                _, seq, op_name, payload, extra = msg
                payload = codec.decode(payload)
                if op_name == "broadcast":
                    result = net.broadcast(seq, payload, extra["root"])
                elif op_name == "reduce":
                    result = net.reduce(seq, payload, extra["op"], extra["root"])
                elif op_name == "allreduce":
                    result = net.allreduce(seq, payload, extra["op"])
                elif op_name == "gather":
                    result = net.gather(seq, payload, extra["root"])
                elif op_name == "allgather":
                    result = net.allgather(seq, payload)
                elif op_name == "scan":
                    result = net.scan(seq, payload, extra["op"])
                elif op_name == "barrier":
                    net.allreduce(seq, 0.0, Communicator.SUM)
                    result = None
                elif op_name == "p2p":
                    result = net.p2p(seq, extra["src"], extra["dst"], payload)
                else:
                    raise ValueError(f"unknown collective {op_name!r}")
                conn.send(("ok", codec.encode(result)))
            elif kind == "flush":
                # Recovery resync: join-and-drop outstanding async kernels
                # (they are local-only, so the join is bounded), adopt the
                # new epoch, drain stale inbox traffic, and drop cached
                # attachments to segments that may have been swept.
                _, new_epoch = msg
                for thread, _box in async_jobs.values():
                    thread.join()
                async_jobs.clear()
                mailbox.flush(new_epoch)
                codec.forget_attachments()
                set_worker_log_epoch(new_epoch)
                set_worker_beat_epoch(new_epoch)
                tracer.instant("epoch_bump", cat="fault", epoch=int(new_epoch))
                conn.send(("ok", None))
            elif kind == "logs":
                # forward buffered log records over the command pipe; they
                # are plain tuples, no payload codec needed
                conn.send(("ok", drain_worker_log_records()))
            else:
                conn.send(("err", f"ValueError('unknown command {kind!r}')", ""))
        except BaseException as exc:  # propagate everything to the coordinator
            try:
                conn.send(("err", repr(exc), traceback.format_exc()))
            except (OSError, ValueError):  # pragma: no cover - pipe gone
                break
        finally:
            if cmd_span is not None:
                cmd_span.__exit__(None, None, None)
    for thread, _box in async_jobs.values():  # pragma: no cover - defensive
        thread.join(timeout=1.0)
    codec.close()
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------
class _ProcessPerPEFuture(PerPEFuture):
    """Handle to a kernel running in background threads inside the workers."""

    asynchronous = True

    def __init__(self, comm: "ProcessComm", tag: int) -> None:
        super().__init__(results=None)
        self._comm = comm
        self._tag = tag
        self._wait_time = 0.0
        self._failure: Optional[WorkerError] = None

    @property
    def wait_time(self) -> float:
        """Measured seconds ``wait()`` blocked for (0 until joined)."""
        return self._wait_time

    def wait(self) -> List[object]:
        if self._results is not None:
            return self._results
        if self._failure is not None:
            # the workers already popped this tag at the first join; re-raise
            # the original failure instead of re-sending the join command
            raise self._failure
        comm = self._comm
        comm._ensure_open()
        start = time.perf_counter()
        try:
            comm._send_commands({rank: ("join_async", self._tag) for rank in range(comm.p)})
            self._results = comm._collect(range(comm.p))
        except WorkerError as exc:
            self._failure = exc
            raise
        self._wait_time = time.perf_counter() - start
        comm._record(
            "join_per_pe_async",
            messages=2 * comm.p,
            words=0.0,
            rounds=1,
            elapsed=self._wait_time,
        )
        return self._results


class ProcessComm(Communicator):
    """Communicator running each PE as a real ``multiprocessing`` worker.

    Parameters
    ----------
    p:
        Number of worker processes (PEs).
    start_method:
        ``multiprocessing`` start method; defaults to ``"fork"`` where
        available, ``"spawn"`` otherwise.
    reply_timeout:
        Seconds the coordinator waits for a worker's reply to any single
        command before declaring it dead.
    mailbox_timeout:
        Seconds a worker waits for a peer's message inside a collective.
        Kept below ``reply_timeout`` so that a dead peer surfaces as a
        :class:`WorkerError` instead of a coordinator timeout.
    payload_transport:
        ``"pickle"`` (default) serialises every payload through the
        queues/pipes; ``"shm"`` routes numpy arrays of at least
        ``shm_min_bytes`` through reusable shared-memory segments
        (descriptor-passed, see :mod:`repro.network.shm_ring`).
    shm_min_bytes:
        Size threshold (bytes) above which an array takes the
        shared-memory path; ignored under the pickle transport.
    ledger:
        Ledger recording *measured* wall-clock time per operation; a fresh
        one is created if not given.
    fault:
        Optional :class:`FaultSpec` installed on one worker at spawn time
        (fault-injection tests only).  Respawned workers never inherit it.
    """

    kind = "process"

    def __init__(
        self,
        p: int,
        *,
        start_method: Optional[str] = None,
        reply_timeout: float = 120.0,
        mailbox_timeout: float = 30.0,
        payload_transport: str = "pickle",
        shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES,
        ledger: Optional[CostLedger] = None,
        fault: Optional[FaultSpec] = None,
    ) -> None:
        super().__init__()
        self.topology = Topology(p)
        self.ledger = ledger if ledger is not None else CostLedger()
        self.trace = None  # message tracing is a simulator-only feature
        self.reply_timeout = float(reply_timeout)
        self.mailbox_timeout = float(mailbox_timeout)
        self.payload_transport = normalize_payload_transport(payload_transport)
        self.shm_min_bytes = int(shm_min_bytes)
        self._codec = _PayloadCodec(self.payload_transport, self.shm_min_bytes)
        self._ctx = mp.get_context(start_method or default_start_method())
        self._seq = 0
        self._async_tags = 0
        self._groups = 0
        self._epoch = 0
        self._shm_token = secrets.token_hex(4)
        self._state_specs: List[Tuple[int, Callable[..., object], Optional[List[tuple]]]] = []
        self.last_swept_segments: List[str] = []
        self._closed = False
        self._inboxes = [self._ctx.Queue() for _ in range(p)]
        # heartbeat channel: one many-producer queue all workers inherit
        # at spawn; drained by an attached HealthMonitor (or recover/
        # shutdown, for the eagerly-forwarded log records it also carries)
        self._beat_queue = self._ctx.Queue()
        self._conns: List[object] = [None] * p
        self._procs: List[object] = [None] * p
        for rank in range(p):
            worker_fault = fault if fault is not None and fault.rank == rank else None
            self._spawn_worker(rank, worker_fault)
        self._atexit = atexit.register(self.shutdown)

    def _segment_prefix(self, rank: int) -> Optional[str]:
        """Deterministic shm name prefix of one worker incarnation.

        Scoped by communicator token, rank and epoch: the recovery sweep
        for a dead rank globs ``{stem}_{token}_r{rank}e`` and can match
        only that rank's (dead) incarnations, never a live peer.
        """
        if self.payload_transport != "shm":
            return None
        return f"{SHM_NAME_STEM}_{self._shm_token}_r{rank}e{self._epoch}"

    def _spawn_worker(self, rank: int, fault: Optional[FaultSpec]) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                rank,
                self.p,
                child_conn,
                self._inboxes,
                self.mailbox_timeout,
                self.payload_transport,
                self.shm_min_bytes,
                self._segment_prefix(rank),
                self._epoch,
                fault,
                self._beat_queue,
            ),
            name=f"repro-pe-{rank}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns[rank] = parent_conn
        self._procs[rank] = proc

    # ------------------------------------------------------------------
    # command plumbing
    # ------------------------------------------------------------------
    @property
    def workers_alive(self) -> List[bool]:
        """Liveness of each worker process (diagnostics/tests)."""
        return [proc.is_alive() for proc in self._procs]

    @property
    def worker_pids(self) -> List[int]:
        """PID of each worker process (the fault harness kills by pid)."""
        return [proc.pid for proc in self._procs]

    @property
    def epoch(self) -> int:
        """Current communicator epoch (bumped by every :meth:`recover`)."""
        return self._epoch

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("ProcessComm has been shut down")

    def _abort_pending_collectives(self) -> None:
        """Post an abort sentinel into every inbox (current epoch).

        Sent the moment a worker failure is detected so peers blocked in
        a half-finished collective unwind with :class:`PeerAbort` at once
        instead of waiting out their mailbox timeout.  Sentinels that no
        rank consumes become stale at the next epoch bump and are dropped
        by the mailbox filter.
        """
        for inbox in self._inboxes:
            try:
                inbox.put((ABORT_SRC, ABORT_SRC, self._epoch, None))
            except (OSError, ValueError):  # pragma: no cover - queue closed
                pass

    def _collect(self, ranks: Sequence[int]) -> List[object]:
        """Collect one reply from each given rank; raise if any failed.

        Waits on the command pipes *and* the worker process sentinels at
        the same time, so a worker death is detected immediately rather
        than after ``reply_timeout``.  On the first failure of any kind an
        abort sentinel is posted to every inbox (see
        :meth:`_abort_pending_collectives`); all remaining replies are
        still drained before raising so the surviving pipes stay in sync
        for subsequent commands.
        """
        ranks = list(ranks)
        results: Dict[int, object] = {}
        failures: List[Tuple[int, str, str]] = []
        pending = set(ranks)
        aborted = False

        def _fail(rank: int, message: str, tb: str = "") -> None:
            nonlocal aborted
            failures.append((rank, message, tb))
            results[rank] = None
            pending.discard(rank)
            if not aborted:
                aborted = True
                self._abort_pending_collectives()

        deadline = time.monotonic() + self.reply_timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for rank in sorted(pending):
                    failures.append((rank, f"no reply within {self.reply_timeout}s", ""))
                    results[rank] = None
                pending.clear()
                break
            waitables = []
            for rank in pending:
                waitables.append(self._conns[rank])
                waitables.append(self._procs[rank].sentinel)
            ready = mp_connection.wait(waitables, timeout=remaining)
            for rank in sorted(pending):
                conn = self._conns[rank]
                proc = self._procs[rank]
                if conn in ready or conn.poll(0):
                    try:
                        reply = conn.recv()
                    except (EOFError, OSError) as exc:
                        _fail(rank, f"worker pipe closed ({exc!r})")
                        continue
                    if reply[0] == "ok":
                        results[rank] = self._codec.decode(reply[1])
                        pending.discard(rank)
                    else:
                        _fail(rank, str(reply[1]), reply[2])
                elif proc.sentinel in ready and not proc.is_alive():
                    _fail(rank, f"worker died (exitcode={proc.exitcode})")
        if failures:
            raise WorkerError(failures)
        return [results[rank] for rank in ranks]

    def _send_commands(self, messages_by_rank: Dict[int, object]) -> None:
        """Send one command per rank; on any send failure abort and raise.

        A dead worker's pipe raises ``BrokenPipeError`` at *send* time.
        The ranks that did receive the command would block inside any
        collective it starts, so on a failed send the coordinator posts
        abort sentinels, drains the successfully commanded ranks (their
        results are void — the operation as a whole failed) and raises the
        aggregated :class:`WorkerError`.
        """
        send_failures: List[Tuple[int, str, str]] = []
        sent: List[int] = []
        for rank, message in messages_by_rank.items():
            try:
                self._conns[rank].send(message)
                sent.append(rank)
            except (BrokenPipeError, OSError, ValueError) as exc:
                send_failures.append((rank, f"could not send command ({exc!r})", ""))
        if send_failures:
            self._abort_pending_collectives()
            try:
                self._collect(sent)
            except WorkerError as exc:
                send_failures.extend(exc.failures)
            raise WorkerError(send_failures)

    def _command_all(self, messages: Sequence[object]) -> List[object]:
        self._ensure_open()
        self._send_commands(dict(enumerate(messages)))
        return self._collect(range(self.p))

    def _record(self, op: str, messages: int, words: float, rounds: int, elapsed: float) -> None:
        self.ledger.record(
            op,
            phase=self._phase,
            p=self.p,
            messages=messages,
            words=words,
            rounds=rounds,
            time=elapsed,
        )

    def _collective(self, op_name: str, payloads: Sequence[object], extra: dict) -> List[object]:
        seq = self._seq
        self._seq += 1
        return self._command_all(
            [
                ("coll", seq, op_name, self._codec.encode(payloads[rank]), extra)
                for rank in range(self.p)
            ]
        )

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def broadcast(
        self, values: Sequence[object], root: int = 0, *, words: Optional[float] = None
    ) -> List[object]:
        """Broadcast ``values[root]`` to all PEs along a real binomial tree."""
        self._check_values(values)
        root = self.topology.validate_rank(root)
        if words is None:
            words = collectives.payload_words(values[root])
        start = time.perf_counter()
        result = self._collective("broadcast", values, {"root": root})
        self._record(
            "broadcast",
            messages=self.p - 1,
            words=words * (self.p - 1),
            rounds=self.topology.rounds,
            elapsed=time.perf_counter() - start,
        )
        return result

    def reduce(
        self,
        values: Sequence[object],
        op: ReduceOp,
        root: int = 0,
        *,
        words: Optional[float] = None,
    ) -> object:
        """Reduce per-PE values with ``op``; result is computed at ``root``."""
        self._check_values(values)
        root = self.topology.validate_rank(root)
        if words is None:
            words = max(collectives.payload_words(v) for v in values)
        start = time.perf_counter()
        results = self._collective("reduce", values, {"op": op, "root": root})
        self._record(
            f"reduce[{op.name}]",
            messages=self.p - 1,
            words=words * (self.p - 1),
            rounds=self.topology.rounds,
            elapsed=time.perf_counter() - start,
        )
        return results[root]

    def allreduce(
        self, values: Sequence[object], op: ReduceOp, *, words: Optional[float] = None
    ) -> List[object]:
        """All-reduce via a real butterfly exchange between the workers."""
        self._check_values(values)
        if words is None:
            words = max(collectives.payload_words(v) for v in values)
        messages = max(0, 2 * (self.p - 1))
        start = time.perf_counter()
        result = self._collective("allreduce", values, {"op": op})
        self._record(
            f"allreduce[{op.name}]",
            messages=messages,
            words=words * messages,
            rounds=self.topology.rounds,
            elapsed=time.perf_counter() - start,
        )
        return result

    def gather(
        self,
        values: Sequence[object],
        root: int = 0,
        *,
        words_per_pe: Optional[Sequence[float]] = None,
    ) -> List[object]:
        """Gather one value per PE at ``root`` along a real binomial tree."""
        self._check_values(values)
        root = self.topology.validate_rank(root)
        if words_per_pe is None:
            words_per_pe = [collectives.payload_words(v) for v in values]
        start = time.perf_counter()
        results = self._collective("gather", values, {"root": root})
        self._record(
            "gather",
            messages=self.p - 1,
            words=float(sum(words_per_pe)),
            rounds=self.topology.rounds,
            elapsed=time.perf_counter() - start,
        )
        return results[root]

    def allgather(
        self, values: Sequence[object], *, words_per_pe: Optional[Sequence[float]] = None
    ) -> List[List[object]]:
        """All-gather via recursive doubling (or gather+broadcast) between workers."""
        self._check_values(values)
        if words_per_pe is None:
            words_per_pe = [collectives.payload_words(v) for v in values]
        start = time.perf_counter()
        result = self._collective("allgather", values, {})
        self._record(
            "allgather",
            messages=2 * (self.p - 1),
            words=float(sum(words_per_pe)),
            rounds=self.topology.rounds,
            elapsed=time.perf_counter() - start,
        )
        return [list(v) for v in result]

    def scan(self, values: Sequence[object], op: ReduceOp, *, words: Optional[float] = None) -> List[object]:
        """Inclusive prefix reduction via a real hypercube exchange."""
        self._check_values(values)
        if words is None:
            words = max(collectives.payload_words(v) for v in values)
        start = time.perf_counter()
        result = self._collective("scan", values, {"op": op})
        self._record(
            f"scan[{op.name}]",
            messages=max(0, 2 * (self.p - 1)),
            words=words * (self.p - 1),
            rounds=self.topology.rounds,
            elapsed=time.perf_counter() - start,
        )
        return result

    def barrier(self) -> None:
        """Synchronise all workers (empty all-reduction)."""
        start = time.perf_counter()
        self._collective("barrier", [0.0] * self.p, {})
        self._record(
            "barrier",
            messages=max(0, 2 * (self.p - 1)),
            words=0.0,
            rounds=self.topology.rounds,
            elapsed=time.perf_counter() - start,
        )

    def send(self, src: int, dst: int, value: object, *, words: Optional[float] = None) -> object:
        """Send ``value`` from worker ``src`` to worker ``dst``; returns it."""
        src = self.topology.validate_rank(src)
        dst = self.topology.validate_rank(dst)
        if words is None:
            words = collectives.payload_words(value)
        if src == dst:
            return value
        self._ensure_open()
        seq = self._seq
        self._seq += 1
        start = time.perf_counter()
        extra = {"src": src, "dst": dst}
        self._send_commands(
            {
                src: ("coll", seq, "p2p", self._codec.encode(value), extra),
                dst: ("coll", seq, "p2p", None, extra),
            }
        )
        results = self._collect([src, dst])
        self._record("send", messages=1, words=words, rounds=1, elapsed=time.perf_counter() - start)
        return results[1]

    # ------------------------------------------------------------------
    # PE-state execution layer (states live inside the workers)
    # ------------------------------------------------------------------
    def create_pe_state(
        self,
        factory: Callable[..., object],
        per_pe_args: Optional[Sequence[Sequence[object]]] = None,
    ) -> PEStateHandle:
        """Install ``factory(rank, *args)`` as a state object in every worker."""
        if per_pe_args is not None and len(per_pe_args) != self.p:
            raise ValueError(f"expected {self.p} per-PE argument tuples, got {len(per_pe_args)}")
        group = self._groups
        self._groups += 1
        # Remember the spec so recover() can replay it on a respawned
        # worker: the fresh process re-runs the factory (empty state) and
        # the driver then restores actual contents from its checkpoint.
        self._state_specs.append(
            (group, factory, None if per_pe_args is None else [tuple(a) for a in per_pe_args])
        )
        self._command_all(
            [
                (
                    "init_state",
                    group,
                    factory,
                    self._codec.encode(tuple(per_pe_args[rank])) if per_pe_args is not None else (),
                )
                for rank in range(self.p)
            ]
        )
        return PEStateHandle(group=group)

    def run_per_pe(
        self,
        handle: PEStateHandle,
        fn: Callable[..., object],
        per_pe_args: Optional[Sequence[Sequence[object]]] = None,
    ) -> List[object]:
        """Dispatch ``fn`` to all workers at once; local work runs in parallel."""
        if per_pe_args is not None and len(per_pe_args) != self.p:
            raise ValueError(f"expected {self.p} per-PE argument tuples, got {len(per_pe_args)}")
        start = time.perf_counter()
        results = self._command_all(
            [
                (
                    "run",
                    handle.group,
                    fn,
                    self._codec.encode(tuple(per_pe_args[rank])) if per_pe_args is not None else (),
                )
                for rank in range(self.p)
            ]
        )
        self._record(
            "run_per_pe",
            messages=2 * self.p,
            words=0.0,
            rounds=1,
            elapsed=time.perf_counter() - start,
        )
        return results

    def run_per_pe_async(
        self,
        handle: PEStateHandle,
        fn: Callable[..., object],
        per_pe_args: Optional[Sequence[Sequence[object]]] = None,
    ) -> PerPEFuture:
        """Dispatch ``fn`` to a background thread inside every worker.

        The workers keep serving collectives and other kernels while the
        dispatched kernel runs, which is what lets the pipelined drivers
        overlap next-round key generation with the current round's
        selection.  The returned future's ``wait()`` joins the worker
        threads and returns (or raises) their results.
        """
        if per_pe_args is not None and len(per_pe_args) != self.p:
            raise ValueError(f"expected {self.p} per-PE argument tuples, got {len(per_pe_args)}")
        tag = self._async_tags
        self._async_tags += 1
        start = time.perf_counter()
        self._command_all(
            [
                (
                    "run_async",
                    handle.group,
                    tag,
                    fn,
                    self._codec.encode(tuple(per_pe_args[rank])) if per_pe_args is not None else (),
                )
                for rank in range(self.p)
            ]
        )
        self._record(
            "run_per_pe_async",
            messages=2 * self.p,
            words=0.0,
            rounds=1,
            elapsed=time.perf_counter() - start,
        )
        return _ProcessPerPEFuture(self, tag)

    def run_on_pe(self, handle: PEStateHandle, pe: int, fn: Callable[..., object], *args) -> object:
        """Dispatch ``fn`` to a single worker."""
        pe = self.topology.validate_rank(pe)
        self._ensure_open()
        self._send_commands({pe: ("run", handle.group, fn, self._codec.encode(tuple(args)))})
        return self._collect([pe])[0]

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _drain_inbox(self, rank: int) -> None:
        inbox = self._inboxes[rank]
        while True:
            try:
                inbox.get_nowait()
            except (queue_module.Empty, OSError, ValueError):
                break

    def _flush_workers(self) -> None:
        self._send_commands({rank: ("flush", self._epoch) for rank in range(self.p)})
        self._collect(range(self.p))

    def drain_worker_logs(self) -> int:
        """Forward buffered worker log records to the coordinator's loggers.

        Workers always buffer their ``repro.*`` log records (bounded
        deque); this pulls them over the command pipes and replays them
        through the coordinator's logger hierarchy, each prefixed with
        the originating rank and epoch.  Dead or unreachable workers are
        skipped.  Returns the number of records forwarded.
        """
        if self._closed:
            return 0
        total = 0
        for rank, proc in enumerate(self._procs):
            if not proc.is_alive():
                continue
            try:
                self._send_commands({rank: ("logs",)})
                (records,) = self._collect([rank])
            except (WorkerError, OSError, ValueError, EOFError):
                continue
            replay_worker_records(records)
            total += len(records)
        return total

    def drain_beats(self, *, replay_logs: bool = True) -> List[tuple]:
        """Drain the heartbeat queue (non-blocking).

        The queue carries ``("beat", ...)`` progress tuples and eagerly
        forwarded ``("log", record)`` tuples.  With ``replay_logs=True``
        (the recover/shutdown path) log records are replayed into the
        coordinator's loggers here and only the beats are returned; the
        health monitor drains with ``replay_logs=False`` and handles
        both kinds itself.
        """
        messages: List[tuple] = []
        while True:
            try:
                messages.append(self._beat_queue.get_nowait())
            except (queue_module.Empty, OSError, ValueError):
                break
        if replay_logs:
            return drain_beat_messages(messages)
        return messages

    def recover(self) -> List[int]:
        """Respawn dead workers and resynchronise the communicator.

        Called by the driver after a :class:`WorkerError`.  In order:

        1. find dead ranks via ``Process.is_alive``;
        2. bump the epoch — everything sent before this instant is stale
           and will be dropped by the mailbox filters;
        3. drain the dead ranks' inboxes (they cannot drain their own)
           and sweep the shared-memory segments their dead incarnations
           leaked (rank-scoped names — live peers are untouchable);
        4. respawn each dead rank with a fresh pipe, the new epoch and a
           new segment prefix, then replay every recorded
           ``create_pe_state`` on it in creation order (fresh, *empty*
           states — restoring contents from a checkpoint is the driver's
           job, see :mod:`repro.checkpoint`);
        5. flush every worker (drop async jobs, stale messages, stash and
           attachment caches; adopt the new epoch) and drop the
           coordinator's own attachment cache.

        Also safe to call when no worker died (e.g. after a lost-message
        timeout): steps 2 and 5 alone restore a consistent collective
        state.  Returns the list of respawned ranks.
        """
        self._ensure_open()
        dead = [rank for rank, proc in enumerate(self._procs) if not proc.is_alive()]
        # forward what the survivors logged before the failure, so the
        # records carry their pre-recovery epoch tags — and whatever the
        # dead ranks managed to ship eagerly over the beat queue (their
        # buffered records died with them; the eager ≥WARNING copies are
        # all the crash context that survives)
        self.drain_worker_logs()
        self.drain_beats()
        self._epoch += 1
        _logger.info(
            "recovering communicator: epoch %d -> %d, dead ranks %s",
            self._epoch - 1,
            self._epoch,
            dead,
        )
        self.tracer.instant(
            "recover", cat="fault", epoch=self._epoch, dead_ranks=list(dead)
        )
        swept: List[str] = []
        for rank in dead:
            self._drain_inbox(rank)
            if self.payload_transport == "shm":
                swept.extend(sweep_named_segments(f"{SHM_NAME_STEM}_{self._shm_token}_r{rank}e"))
        for rank in dead:
            try:
                self._conns[rank].close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._procs[rank].join(timeout=1.0)
            self._spawn_worker(rank, fault=None)
        for rank in dead:
            for group, factory, per_pe_args in self._state_specs:
                args = () if per_pe_args is None else self._codec.encode(tuple(per_pe_args[rank]))
                self._send_commands({rank: ("init_state", group, factory, args)})
                self._collect([rank])
        self._flush_workers()
        self._codec.forget_attachments()
        self.last_swept_segments = swept
        return dead

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Terminate all workers and release IPC resources.  Idempotent."""
        if self._closed:
            return
        try:
            self.drain_worker_logs()
            self.drain_beats()
        except Exception:  # pragma: no cover - teardown is best-effort
            pass
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc.is_alive():
                proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=1.0)
        for queue in self._inboxes:
            try:
                queue.cancel_join_thread()
                queue.close()
            except (OSError, ValueError):  # pragma: no cover
                pass
        try:
            self._beat_queue.cancel_join_thread()
            self._beat_queue.close()
        except (OSError, ValueError):  # pragma: no cover
            pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        # All workers are gone: unlink the coordinator's own ring (workers
        # that exited cleanly unlinked theirs).  A worker that died hard —
        # terminated above, or killed before shutdown (non-zero exitcode,
        # None = unjoinable) — never ran its teardown, and ring segments
        # are deliberately untracked, so best-effort-unlink the worker
        # segments this side attached, then sweep every remaining segment
        # of this communicator by its token-scoped name (covers the
        # worker-to-worker segments of hard-killed workers, which used to
        # be a documented leak).
        unclean = any(proc.exitcode != 0 for proc in self._procs)
        self._codec.close(unlink_attached=unclean)
        if self.payload_transport == "shm":
            sweep_named_segments(f"{SHM_NAME_STEM}_{self._shm_token}_")
        try:
            atexit.unregister(self._atexit)
        except Exception:  # pragma: no cover
            pass

    def __del__(self) -> None:  # pragma: no cover - defensive
        try:
            self.shutdown()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        status = "closed" if self._closed else "open"
        return f"ProcessComm(p={self.p}, pid={os.getpid()}, {status})"

"""SPMD-style simulated communicator with cost accounting.

:class:`SimComm` is the *simulated* backend of the
:class:`~repro.network.base.Communicator` protocol.  It mirrors the
collective interface of MPI (broadcast, reduce, all-reduce, gather,
all-gather, scan, barrier) but operates on *per-PE value lists* because all
``p`` PEs live inside one simulating process.

Every call

1. routes the data with the tree algorithms from
   :mod:`repro.network.collectives` (optionally tracing every message), and
2. charges the :class:`~repro.network.cost_model.CostLedger` with the
   simulated time of the operation under the paper's machine model —
   ``O(beta*l + alpha*log p)`` for broadcast/reductions and
   ``O(beta*p*l + alpha*log p)`` for gather/all-gather.

Calls are attributed to the *phase* currently set via :meth:`SimComm.phase`
(e.g. ``"select"`` or ``"threshold"``), which is how the running-time
composition of Figure 6 is reconstructed.

The per-PE states of the execution layer (local reservoirs, per-PE random
generators) are held in plain Python lists and kernels run inline — which
is exactly what makes the simulated backend deterministic and fast to test
against.  See :class:`~repro.network.process_comm.ProcessComm` for the real
multiprocess execution backend.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.network import collectives
from repro.network.base import Communicator, PEStateHandle, ReduceOp
from repro.network.cost_model import CostLedger, CostParameters
from repro.network.message import MessageTrace
from repro.network.topology import Topology

__all__ = ["ReduceOp", "SimComm"]


class SimComm(Communicator):
    """Simulated communicator over ``p`` PEs.

    Parameters
    ----------
    p:
        Number of simulated processing elements.
    cost:
        Machine constants; defaults to :class:`CostParameters` defaults.
    ledger:
        Cost ledger to charge; a fresh one is created if not given.
    trace_messages:
        If true, every simulated point-to-point message is recorded in
        :attr:`trace` (useful in tests, off by default for speed).
    """

    kind = "sim"

    def __init__(
        self,
        p: int,
        cost: Optional[CostParameters] = None,
        ledger: Optional[CostLedger] = None,
        *,
        trace_messages: bool = False,
    ) -> None:
        super().__init__()
        self.topology = Topology(p)
        self.cost = cost or CostParameters()
        self.ledger = ledger if ledger is not None else CostLedger()
        self.trace: Optional[MessageTrace] = MessageTrace() if trace_messages else None
        self._pe_states: List[List[object]] = []

    # ------------------------------------------------------------------
    def _on_message(self):
        return self.trace.add if self.trace is not None else None

    def _record(self, op: str, messages: int, words: float, rounds: int, time: float) -> None:
        self.ledger.record(
            op,
            phase=self._phase,
            p=self.p,
            messages=messages,
            words=words,
            rounds=rounds,
            time=time,
        )

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def broadcast(self, values: Sequence[object], root: int = 0, *, words: Optional[float] = None) -> List[object]:
        """Broadcast ``values[root]`` to all PEs; returns the per-PE list."""
        self._check_values(values)
        if words is None:
            words = collectives.payload_words(values[root])
        result, rounds = collectives.binomial_broadcast(
            values, root, self.topology, words=words, on_message=self._on_message()
        )
        time = self.cost.collective_time(self.p, words)
        self._record("broadcast", messages=self.p - 1, words=words * (self.p - 1), rounds=rounds, time=time)
        return result

    def reduce(
        self,
        values: Sequence[object],
        op: ReduceOp,
        root: int = 0,
        *,
        words: Optional[float] = None,
    ) -> object:
        """Reduce per-PE values with ``op``; the result is returned (logically at ``root``)."""
        self._check_values(values)
        if words is None:
            words = max(collectives.payload_words(v) for v in values)
        result, rounds = collectives.binomial_reduce(
            values, op, root, self.topology, words=words, on_message=self._on_message()
        )
        time = self.cost.collective_time(self.p, words)
        self._record(f"reduce[{op.name}]", messages=self.p - 1, words=words * (self.p - 1), rounds=rounds, time=time)
        return result

    def allreduce(
        self,
        values: Sequence[object],
        op: ReduceOp,
        *,
        words: Optional[float] = None,
    ) -> List[object]:
        """All-reduce: every PE obtains the reduction of all contributions."""
        self._check_values(values)
        if words is None:
            words = max(collectives.payload_words(v) for v in values)
        result, rounds = collectives.butterfly_allreduce(
            values, op, self.topology, words=words, on_message=self._on_message()
        )
        messages = max(0, 2 * (self.p - 1))
        time = self.cost.collective_time(self.p, words)
        self._record(f"allreduce[{op.name}]", messages=messages, words=words * messages, rounds=rounds, time=time)
        return result

    def gather(
        self,
        values: Sequence[object],
        root: int = 0,
        *,
        words_per_pe: Optional[Sequence[float]] = None,
    ) -> List[object]:
        """Gather one value from every PE; returns the rank-ordered list.

        The gathered list is logically available only at ``root``; callers
        emulating SPMD code should only use it "on" that PE.
        """
        self._check_values(values)
        if words_per_pe is None:
            words_per_pe = [collectives.payload_words(v) for v in values]
        result, rounds = collectives.binomial_gather(
            values, root, self.topology, words_per_pe=words_per_pe, on_message=self._on_message()
        )
        total_words = float(sum(words_per_pe))
        time = self.cost.gather_time(self.p, total_words / max(self.p, 1))
        self._record("gather", messages=self.p - 1, words=total_words, rounds=rounds, time=time)
        return result

    def allgather(
        self,
        values: Sequence[object],
        *,
        words_per_pe: Optional[Sequence[float]] = None,
    ) -> List[List[object]]:
        """All-gather: every PE obtains the rank-ordered list of all values."""
        self._check_values(values)
        if words_per_pe is None:
            words_per_pe = [collectives.payload_words(v) for v in values]
        result, rounds = collectives.butterfly_allgather(
            values, self.topology, words_per_pe=words_per_pe, on_message=self._on_message()
        )
        total_words = float(sum(words_per_pe))
        time = self.cost.gather_time(self.p, total_words / max(self.p, 1))
        self._record("allgather", messages=2 * (self.p - 1), words=total_words, rounds=rounds, time=time)
        return result

    def scan(self, values: Sequence[object], op: ReduceOp, *, words: Optional[float] = None) -> List[object]:
        """Inclusive prefix reduction over PE ranks."""
        self._check_values(values)
        if words is None:
            words = max(collectives.payload_words(v) for v in values)
        result, rounds = collectives.hypercube_scan(
            values, op, self.topology, words=words, on_message=self._on_message()
        )
        time = self.cost.collective_time(self.p, words)
        self._record(f"scan[{op.name}]", messages=max(0, 2 * (self.p - 1)), words=words * (self.p - 1), rounds=rounds, time=time)
        return result

    def barrier(self) -> None:
        """Synchronise all PEs (accounted as an empty all-reduction)."""
        time = self.cost.collective_time(self.p, 0.0)
        self._record("barrier", messages=max(0, 2 * (self.p - 1)), words=0.0, rounds=self.topology.rounds, time=time)

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, value: object, *, words: Optional[float] = None) -> object:
        """Send ``value`` from PE ``src`` to PE ``dst`` and return it."""
        src = self.topology.validate_rank(src)
        dst = self.topology.validate_rank(dst)
        if words is None:
            words = collectives.payload_words(value)
        if src != dst:
            if self.trace is not None:
                from repro.network.message import Message

                self.trace.add(Message(src=src, dst=dst, words=words, op="send", round_index=0))
            self._record("send", messages=1, words=words, rounds=1, time=self.cost.message_time(words))
        return value

    # ------------------------------------------------------------------
    # PE-state execution layer (inline: all states live in this process)
    # ------------------------------------------------------------------
    def create_pe_state(
        self,
        factory: Callable[..., object],
        per_pe_args: Optional[Sequence[Sequence[object]]] = None,
    ) -> PEStateHandle:
        """Create one state per PE by calling ``factory(pe, *args)`` inline."""
        if per_pe_args is not None and len(per_pe_args) != self.p:
            raise ValueError(f"expected {self.p} per-PE argument tuples, got {len(per_pe_args)}")
        states = [
            factory(pe, *(per_pe_args[pe] if per_pe_args is not None else ()))
            for pe in range(self.p)
        ]
        self._pe_states.append(states)
        return PEStateHandle(group=len(self._pe_states) - 1)

    def run_per_pe(
        self,
        handle: PEStateHandle,
        fn: Callable[..., object],
        per_pe_args: Optional[Sequence[Sequence[object]]] = None,
    ) -> List[object]:
        """Run ``fn`` against every PE's state, sequentially in rank order."""
        if per_pe_args is not None and len(per_pe_args) != self.p:
            raise ValueError(f"expected {self.p} per-PE argument tuples, got {len(per_pe_args)}")
        states = self._pe_states[handle.group]
        return [
            fn(states[pe], *(per_pe_args[pe] if per_pe_args is not None else ()))
            for pe in range(self.p)
        ]

    def run_on_pe(self, handle: PEStateHandle, pe: int, fn: Callable[..., object], *args) -> object:
        """Run ``fn`` against one PE's state."""
        pe = self.topology.validate_rank(pe)
        return fn(self._pe_states[handle.group][pe], *args)

    def local_pe_state(self, handle: PEStateHandle, pe: int) -> object:
        """The actual state object of PE ``pe`` (simulated backend only)."""
        pe = self.topology.validate_rank(pe)
        return self._pe_states[handle.group][pe]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SimComm(p={self.p}, phase={self._phase!r})"

"""Simulated distributed machine and communication substrate (paper Section 3).

The paper's machine model is ``p`` processing elements (PEs) connected by a
single-ported, full-duplex network in which sending a message of ``l``
machine words costs ``alpha + beta * l`` time.  Collective operations
(broadcast, reduction, all-reduction, gather) built on tree algorithms cost
``O(beta*l + alpha*log p)`` (``O(beta*p*l + alpha*log p)`` for gather).

This package provides:

* :class:`~repro.network.cost_model.CostParameters` — the ``alpha``/``beta``
  machine constants,
* :class:`~repro.network.cost_model.CostLedger` — an account of every
  communication event (messages, words, simulated time) grouped by
  algorithm phase,
* :mod:`~repro.network.collectives` — the tree-based collective algorithms
  operating on per-PE value lists, exposing the exact message pattern,
* :class:`~repro.network.base.Communicator` — the protocol the sampling
  algorithms program against: MPI-style collectives, phase accounting and
  a per-PE state/execution layer,
* :class:`~repro.network.communicator.SimComm` — the simulated backend,
  charging the paper's cost model,
* :class:`~repro.network.process_comm.ProcessComm` — the real multiprocess
  backend: one worker process per PE, collectives executed between the
  workers over queues with the same tree schedules, measured wall-clock
  accounting.
"""

from repro.network.base import (
    PAYLOAD_TRANSPORTS,
    Communicator,
    PEStateHandle,
    ReduceOp,
    make_communicator,
    merge_largest,
    merge_smallest,
    normalize_payload_transport,
)
from repro.network.collectives import (
    binomial_broadcast,
    binomial_gather,
    binomial_reduce,
    butterfly_allgather,
    butterfly_allreduce,
    hypercube_scan,
)
from repro.network.communicator import SimComm
from repro.network.cost_model import CommEvent, CostLedger, CostParameters
from repro.network.message import Message, MessageTrace
from repro.network.process_comm import FaultSpec, PeerAbort, ProcessComm, WorkerError
from repro.network.shm_ring import (
    DEFAULT_SHM_MIN_BYTES,
    ShmAttachmentCache,
    ShmDescriptor,
    ShmRing,
    sweep_named_segments,
)
from repro.network.topology import Topology

__all__ = [
    "CostParameters",
    "CostLedger",
    "CommEvent",
    "Message",
    "MessageTrace",
    "Topology",
    "Communicator",
    "PEStateHandle",
    "SimComm",
    "ProcessComm",
    "WorkerError",
    "PeerAbort",
    "FaultSpec",
    "sweep_named_segments",
    "ReduceOp",
    "make_communicator",
    "merge_smallest",
    "merge_largest",
    "PAYLOAD_TRANSPORTS",
    "normalize_payload_transport",
    "DEFAULT_SHM_MIN_BYTES",
    "ShmDescriptor",
    "ShmRing",
    "ShmAttachmentCache",
    "binomial_broadcast",
    "binomial_reduce",
    "binomial_gather",
    "butterfly_allreduce",
    "butterfly_allgather",
    "hypercube_scan",
]

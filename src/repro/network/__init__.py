"""Simulated distributed machine and communication substrate (paper Section 3).

The paper's machine model is ``p`` processing elements (PEs) connected by a
single-ported, full-duplex network in which sending a message of ``l``
machine words costs ``alpha + beta * l`` time.  Collective operations
(broadcast, reduction, all-reduction, gather) built on tree algorithms cost
``O(beta*l + alpha*log p)`` (``O(beta*p*l + alpha*log p)`` for gather).

This package provides:

* :class:`~repro.network.cost_model.CostParameters` — the ``alpha``/``beta``
  machine constants,
* :class:`~repro.network.cost_model.CostLedger` — an account of every
  communication event (messages, words, simulated time) grouped by
  algorithm phase,
* :mod:`~repro.network.collectives` — the tree-based collective algorithms
  operating on per-PE value lists, exposing the exact message pattern,
* :class:`~repro.network.communicator.SimComm` — the SPMD-style facade the
  sampling algorithms program against, mirroring the familiar MPI
  collective interface while charging the cost model.
"""

from repro.network.collectives import (
    binomial_broadcast,
    binomial_gather,
    binomial_reduce,
    butterfly_allgather,
    butterfly_allreduce,
    hypercube_scan,
)
from repro.network.communicator import ReduceOp, SimComm
from repro.network.cost_model import CommEvent, CostLedger, CostParameters
from repro.network.message import Message, MessageTrace
from repro.network.topology import Topology

__all__ = [
    "CostParameters",
    "CostLedger",
    "CommEvent",
    "Message",
    "MessageTrace",
    "Topology",
    "SimComm",
    "ReduceOp",
    "binomial_broadcast",
    "binomial_reduce",
    "binomial_gather",
    "butterfly_allreduce",
    "butterfly_allgather",
    "hypercube_scan",
]

"""Logical topology helpers for the simulated machine.

The collectives use binomial trees and hypercube (butterfly) exchanges, the
standard building blocks behind the ``O(beta*l + alpha*log p)`` collective
bounds assumed by the paper.  The topology object answers purely structural
questions — who is whose parent/child in a binomial tree rooted at an
arbitrary rank, which ranks pair up in each butterfly round — and carries no
state of its own.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.utils.validation import check_positive_int

__all__ = ["Topology"]


class Topology:
    """Structural description of ``p`` PEs numbered ``0..p-1``."""

    def __init__(self, p: int) -> None:
        self.p = check_positive_int(p, "p")

    @property
    def rounds(self) -> int:
        """Number of communication rounds of a tree/butterfly collective."""
        return math.ceil(math.log2(self.p)) if self.p > 1 else 0

    def validate_rank(self, rank: int) -> int:
        rank = int(rank)
        if not 0 <= rank < self.p:
            raise ValueError(f"rank {rank} out of range 0..{self.p - 1}")
        return rank

    # -- binomial tree ----------------------------------------------------
    def relative_rank(self, rank: int, root: int) -> int:
        """Rank relative to ``root`` (the root has relative rank 0)."""
        rank = self.validate_rank(rank)
        root = self.validate_rank(root)
        return (rank - root) % self.p

    def binomial_parent(self, rank: int, root: int = 0) -> int:
        """Parent of ``rank`` in the binomial broadcast tree rooted at ``root``.

        The root is its own parent.
        """
        rel = self.relative_rank(rank, root)
        if rel == 0:
            return self.validate_rank(root)
        # Clear the lowest set bit of the relative rank.
        parent_rel = rel & (rel - 1)
        return (parent_rel + root) % self.p

    def binomial_children(self, rank: int, root: int = 0) -> List[int]:
        """Children of ``rank`` in the binomial tree rooted at ``root``.

        Children are returned in the order a broadcast sends to them (most
        significant new bit first), which is also the reverse order in which
        a reduction receives from them.
        """
        rel = self.relative_rank(rank, root)
        children: List[int] = []
        # The lowest set bit of ``rel`` (or log2(p) for the root) bounds the
        # bit positions at which children attach.
        if rel == 0:
            low = self.rounds
        else:
            low = (rel & -rel).bit_length() - 1
        for bit in reversed(range(low)):
            child_rel = rel | (1 << bit)
            if child_rel < self.p:
                children.append((child_rel + self.validate_rank(root)) % self.p)
        return children

    # -- hypercube / butterfly --------------------------------------------
    def butterfly_partner(self, rank: int, round_index: int) -> int:
        """Partner of ``rank`` in butterfly round ``round_index`` (may not exist).

        Returns the XOR partner; for non-power-of-two ``p`` the caller has to
        check that the partner is a valid rank.
        """
        rank = self.validate_rank(rank)
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        return rank ^ (1 << round_index)

    def butterfly_rounds(self) -> List[List[Tuple[int, int]]]:
        """Pairs of ranks exchanging data in each butterfly round.

        Ranks without a valid partner in a round (non-power-of-two ``p``)
        simply sit the round out; the resulting schedule still converges in
        ``ceil(log2 p)`` rounds for the all-reduce/all-gather built on it.
        """
        schedule: List[List[Tuple[int, int]]] = []
        for r in range(self.rounds):
            pairs: List[Tuple[int, int]] = []
            for rank in range(self.p):
                partner = rank ^ (1 << r)
                if partner < self.p and rank < partner:
                    pairs.append((rank, partner))
            schedule.append(pairs)
        return schedule

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Topology(p={self.p})"

"""Sliding-window and time-decayed reservoir sampling.

The unbounded samplers of :mod:`repro.core` answer "sample from everything
seen so far"; this package answers the recency-weighted variants that
production stream systems ask for, behind the same key-based machinery:

* :class:`~repro.window.sliding.SlidingWindowReservoir` — sequential
  sampling over the **last W items**, with priority-ordered expiry and a
  bounded over-sample buffer (:mod:`repro.window.buffer`) that backfills
  the sample as items expire,
* :class:`~repro.window.decayed.DecayedReservoir` — **exponential
  time-decay** sampling: the decay factor is folded into the key
  generation in log-space, so old keys decay in place and the classic
  threshold machinery applies unchanged,
* :class:`~repro.window.distributed.DistributedWindowSampler` — the
  **distributed** sliding window: each PE evicts expired candidates from
  its buffer by timestamp and the distributed selection re-runs over the
  surviving keysets to re-establish the global sample boundary, on either
  execution backend.

All three are reachable from the high-level API via
``ReservoirSampler(k, window=...)`` / ``ReservoirSampler(k, decay=...)``
and ``make_distributed_sampler(..., window=...)``.
"""

from repro.window.buffer import SlidingWindowBuffer, suffix_topk_mask, suffix_topk_scan
from repro.window.decayed import DecayedReservoir, decayed_log_keys
from repro.window.distributed import DistributedWindowSampler
from repro.window.sliding import SlidingWindowReservoir

__all__ = [
    "SlidingWindowBuffer",
    "suffix_topk_mask",
    "suffix_topk_scan",
    "SlidingWindowReservoir",
    "DecayedReservoir",
    "decayed_log_keys",
    "DistributedWindowSampler",
]

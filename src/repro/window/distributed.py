"""The distributed sliding-window reservoir sampler.

Extends the paper's Algorithm 1 to the sliding-window workload: the union
of the per-PE candidate buffers is, at every round boundary, a weighted
(or uniform) sample without replacement of size ``min(k, |window|)`` of
the **live window** — the items whose timestamps lie within the last
``window`` stamp units.

The round structure differs from the unbounded sampler in two essential
ways:

1. **No insertion threshold.**  Pruning arrivals below the global rank-k
   key is unsound under expiry: a discarded item's smaller-key dominators
   may all be *older* and expire first, after which the item should have
   entered the sample.  Each PE instead prunes with the suffix-top-k
   invariant (see :mod:`repro.window.buffer`), whose dominators are by
   construction *younger* — dropping is permanently safe and the per-PE
   buffer stays at ``O(k log W)`` expected items.
2. **The threshold is recomputed every round.**  After each PE evicts its
   expired candidates (one vectorized mask over the stamp array), the
   distributed selection re-runs over the surviving keysets
   (:func:`repro.selection.windowed.recompute_window_threshold`) to
   re-establish the key with global rank ``k``.  That key is the *sample
   boundary* used to extract ``sample_ids()`` — the buffers are **not**
   pruned against it.

The selection reuses the exact machinery of the unbounded sampler: the
communicator-backed keyset dispatches the generic rank/select and
pivot-proposal kernels of :mod:`repro.core.pe_kernels` against the per-PE
buffers, so the same code runs on :class:`~repro.network.communicator.SimComm`
and :class:`~repro.network.process_comm.ProcessComm` and the same seed
yields byte-identical samples on both (enforced by
``tests/window/test_distributed_window.py``).
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import pe_kernels
from repro.core.distributed import (
    CommBackedKeySet,
    charge_selection_work,
    collect_phase_times,
)
from repro.network.base import Communicator
from repro.runtime.clock import PhaseClock
from repro.runtime.machine import MachineSpec
from repro.runtime.metrics import RoundMetrics
from repro.selection.base import SelectionAlgorithm, SelectionResult
from repro.selection.bernoulli_pivot import SinglePivotSelection
from repro.selection.engine import OrderStatisticsEngine
from repro.stream.items import ItemBatch
from repro.utils.rng import spawn_seed_sequences
from repro.utils.validation import check_positive_int

__all__ = ["DistributedWindowSampler"]


class DistributedWindowSampler:
    """Distributed sliding-window reservoir sampling over timestamped batches.

    Parameters
    ----------
    k:
        Sample size.
    window:
        Window length ``W`` in stamp units: an item is live while its
        stamp exceeds ``newest_stamp - W``.  With the default arrival-index
        stamps this is "the last ``W`` items across all PEs".
    comm:
        Communicator over the ``p`` PEs (simulated or multiprocess).
    selection:
        Distributed selection algorithm used to re-establish the sample
        boundary each round; defaults to single-pivot selection.
    machine:
        Machine model used to charge simulated local-work time.
    weighted:
        ``True`` for weighted sampling (exponential keys), ``False`` for
        uniform sampling.
    seed:
        Seed from which the per-PE random streams are derived.
    amortise_selection:
        Skip the per-round threshold re-selection when a single counting
        all-reduction proves the old boundary still separates exactly
        ``k`` live keys (neither eviction nor insertion touched the
        sample), in which case re-selecting could only confirm the same
        sample.  Skipped rounds are flagged in
        :attr:`~repro.runtime.metrics.RoundMetrics.selection_skipped` and
        counted in :attr:`selection_skips`.

    Batches passed to :meth:`process_round` may be
    :class:`~repro.stream.stamped.TimestampedItemBatch` (explicit stamps)
    or plain :class:`~repro.stream.items.ItemBatch`, in which case stamps
    are assigned from a global arrival counter in PE order — matching
    :class:`~repro.stream.stamped.TimestampedMiniBatchStream`.
    """

    algorithm_name = "ours-window"
    #: reservoir storage marker reported in run metrics
    store = "window"

    def __init__(
        self,
        k: int,
        window: int,
        comm: Communicator,
        *,
        selection: Optional[SelectionAlgorithm] = None,
        machine: Optional[MachineSpec] = None,
        weighted: bool = True,
        seed: Optional[int] = 0,
        amortise_selection: bool = True,
        kernel_tier: str = "numpy",
    ) -> None:
        from repro.core.jit_kernels import resolve_kernel_tier

        self.k = check_positive_int(k, "k")
        self.window = check_positive_int(window, "window")
        self.comm = comm
        self.selection = selection if selection is not None else SinglePivotSelection()
        self.machine = machine if machine is not None else MachineSpec.forhlr_like()
        self.weighted = bool(weighted)
        self.amortise_selection = bool(amortise_selection)
        # windowed ingestion is dense-key (tier-invariant by construction);
        # resolved before worker creation and recorded for the run metrics
        self.kernel_tier = resolve_kernel_tier(kernel_tier)
        self._seed = seed
        seed_seqs = spawn_seed_sequences(seed, comm.p)
        self._handle = comm.create_pe_state(
            functools.partial(
                pe_kernels.make_window_pe_state, k=self.k, kernel_tier=self.kernel_tier
            ),
            per_pe_args=[(ss,) for ss in seed_seqs],
        )
        self._has_worker_stream = False
        #: sample boundary: key with global rank ``min(k, live)`` (``None``
        #: while the whole live window fits into the sample)
        self.threshold: Optional[float] = None
        self._items_seen = 0
        self._total_weight = 0.0
        self._round = 0
        self._next_stamp = 0
        self._max_stamp = -1
        self._evicted_total = 0
        self._selection_skips = 0

    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of PEs."""
        return self.comm.p

    @property
    def items_seen(self) -> int:
        """Total number of items processed so far (all PEs)."""
        return self._items_seen

    @property
    def total_weight(self) -> float:
        return self._total_weight

    @property
    def rounds_processed(self) -> int:
        return self._round

    @property
    def evicted_items(self) -> int:
        """Total number of buffered candidates expired so far (all PEs)."""
        return self._evicted_total

    @property
    def selection_skips(self) -> int:
        """Rounds whose re-selection the amortised boundary check skipped."""
        return self._selection_skips

    def attach_worker_stream(
        self,
        batch_size: int,
        *,
        seed: Optional[int] = 0,
        weights=None,
        variable: bool = False,
    ) -> None:
        """Install a worker-local *stamped* stream shard on every PE.

        Used by the pipelined drivers (:mod:`repro.pipeline`): each PE
        generates its own timestamped batches, replicating a
        constant-batch-size
        :class:`~repro.stream.stamped.TimestampedMiniBatchStream` exactly
        (for fixed-size shards).
        """
        from repro.stream.shard import make_shard_specs

        specs = make_shard_specs(
            self.p, batch_size, seed=seed, weights=weights, variable=variable, stamped=True
        )
        self.comm.run_per_pe(
            self._handle, pe_kernels.install_stream_kernel, [(spec,) for spec in specs]
        )
        self._has_worker_stream = True

    def keyset(self) -> CommBackedKeySet:
        """A selection view over the current per-PE candidate buffers."""
        return CommBackedKeySet(self.comm, self._handle)

    def engine(self) -> OrderStatisticsEngine:
        """The order-statistics engine over the live candidate buffers."""
        return OrderStatisticsEngine(self.keyset(), self.comm, policy=self.selection)

    def buffer_size(self) -> int:
        """Total number of buffered candidates (the distributed over-sample)."""
        return sum(self.comm.run_per_pe(self._handle, pe_kernels.local_size_kernel))

    # ------------------------------------------------------------------
    def _round_stamps(self, batches: Sequence[ItemBatch]) -> List[np.ndarray]:
        """Per-batch stamp arrays (explicit, or assigned in PE order)."""
        stamps_list: List[np.ndarray] = []
        for batch in batches:
            stamps = getattr(batch, "stamps", None)
            if stamps is None:
                stamps = np.arange(
                    self._next_stamp, self._next_stamp + len(batch), dtype=np.int64
                )
                self._next_stamp += len(batch)
            else:
                stamps = np.asarray(stamps, dtype=np.int64)
                if stamps.shape[0]:
                    self._next_stamp = max(self._next_stamp, int(stamps[-1]) + 1)
            stamps_list.append(stamps)
        return stamps_list

    def process_round(self, batches: Sequence[ItemBatch]) -> RoundMetrics:
        """Process one timestamped mini-batch round (one batch per PE)."""
        if len(batches) != self.p:
            raise ValueError(f"expected {self.p} batches (one per PE), got {len(batches)}")
        stamps_list = self._round_stamps(batches)
        clock = PhaseClock(self.p)
        phase_comm_before = self.comm.ledger.time_by_phase()

        # 1. insert: dense keys + suffix-top-k pruning inside each buffer
        with self.comm.phase("insert"):
            results = self.comm.run_per_pe(
                self._handle,
                pe_kernels.window_insert_kernel,
                [
                    (batch.ids, batch.weights, stamps, self.weighted)
                    for batch, stamps in zip(batches, stamps_list)
                ],
            )
        for pe, ((kept, size), batch) in enumerate(zip(results, batches)):
            b = len(batch)
            if b:
                clock.charge(
                    "insert",
                    pe,
                    self.machine.scan_time(b, batch_size=b)
                    + self.machine.key_gen_time(b)
                    + self.machine.tree_op_time(int(kept) + 1, max(int(size), 1)),
                )
        batch_items = sum(len(batch) for batch in batches)
        self._items_seen += batch_items
        self._total_weight += sum(batch.total_weight for batch in batches)
        for stamps in stamps_list:
            if stamps.shape[0]:
                self._max_stamp = max(self._max_stamp, int(stamps[-1]))
        insertions = [int(kept) for kept, _ in results]
        return self._expire_select_finish(clock, phase_comm_before, batch_items, insertions)

    def _expire_select_finish(
        self,
        clock: PhaseClock,
        phase_comm_before: Dict[str, float],
        batch_items: int,
        insertions: List[int],
    ) -> RoundMetrics:
        """Expire + re-select + metric assembly, after this round's insert.

        Shared by :meth:`process_round` and the pipelined engine of
        :mod:`repro.pipeline`, whose insert phase ingests worker-prepared
        batches instead of coordinator-shipped ones.  ``self._max_stamp``
        must already reflect the inserted batches.
        """
        # 2. expire: agree on the newest stamp, evict below the cutoff
        # (reduced in the integer domain — float64 would quantize stamps
        # beyond 2**53, e.g. epoch nanoseconds, and shift the cutoff)
        with self.comm.phase("expire"):
            now = self.comm.allreduce([int(self._max_stamp)] * self.p, Communicator.MAX)
            cutoff = int(now[0]) - self.window
            evict_results = self.comm.run_per_pe(
                self._handle, pe_kernels.window_evict_kernel, [(cutoff,)] * self.p
            )
        sizes = []
        evicted_round = 0
        for pe, (evicted, live) in enumerate(evict_results):
            sizes.append(int(live))
            evicted_round += int(evicted)
            clock.charge(
                "expire", pe, self.machine.tree_op_time(int(evicted) + 1, max(int(live), 1))
            )
        self._evicted_total += evicted_round

        # 3. select + threshold: re-establish the sample boundary over the
        #    surviving keysets (the buffers are never pruned against it)
        selection_result: Optional[SelectionResult] = None
        selection_ran = False
        selection_skipped = False
        engine = self.engine()
        with self.comm.phase("select"):
            total_live = engine.global_size(sizes=sizes)
        if total_live > self.k and self._boundary_still_exact(clock, sizes, engine):
            selection_skipped = True
            self._selection_skips += 1
            self.comm.tracer.instant(
                "selection.amortised_skip",
                cat="select",
                round=self._round,
                buffer_items=total_live,
            )
        else:
            if total_live > self.k:
                self.comm.tracer.instant(
                    "selection.recompute",
                    cat="select",
                    round=self._round,
                    buffer_items=total_live,
                )
            # One engine call: selection + boundary agreement when the live
            # window exceeds k, max-key tightening at exactly k, no boundary
            # below k (the whole window is the sample).
            update = engine.threshold_update(self.k, total=total_live)
            if update.selection_ran:
                selection_result = update.result
                selection_ran = True
                charge_selection_work(
                    clock, self.machine, self.selection, selection_result, sizes
                )
            self.threshold = update.threshold

        self._round += 1
        return self._build_metrics(
            clock,
            phase_comm_before,
            batch_items=batch_items,
            insertions=insertions,
            buffer_items=total_live,
            evicted=evicted_round,
            selection_result=selection_result,
            selection_ran=selection_ran,
            selection_skipped=selection_skipped,
        )

    def _boundary_still_exact(
        self, clock: PhaseClock, sizes: Sequence[int], engine: OrderStatisticsEngine
    ) -> bool:
        """Amortised selection check: does the old boundary still cut at ``k``?

        One counting all-reduction of ``count_le(threshold)`` over the live
        buffers.  When the global count equals ``k`` exactly, this round's
        eviction and insertion did not touch the sample — the ``k`` keys at
        or below the old boundary are still the ``k`` globally smallest —
        so a re-selection could only re-confirm the same sample and is
        skipped.  (The kept boundary may sit slightly above the true
        rank-``k`` key, which is harmless: extraction is by
        ``count_le``-style filtering and still yields those ``k`` items,
        and the buffers are never pruned against the boundary.)
        """
        if not self.amortise_selection or self.threshold is None:
            return False
        with self.comm.phase("select"):
            at_or_below = engine.count_le(float(self.threshold))
        for pe, size in enumerate(sizes):
            clock.charge("select", pe, self.machine.tree_op_time(1, max(int(size), 1)))
        return at_or_below == self.k

    # ------------------------------------------------------------------
    def _build_metrics(
        self,
        clock: PhaseClock,
        phase_comm_before: Dict[str, float],
        *,
        batch_items: int,
        insertions: List[int],
        buffer_items: int,
        evicted: int,
        selection_result: Optional[SelectionResult],
        selection_ran: bool,
        selection_skipped: bool = False,
    ) -> RoundMetrics:
        phase_times = collect_phase_times(
            clock, phase_comm_before, self.comm.ledger.time_by_phase()
        )
        return RoundMetrics(
            round_index=self._round - 1,
            batch_items=batch_items,
            items_seen_total=self._items_seen,
            sample_size=min(self.k, buffer_items),
            threshold=self.threshold,
            phase_times=phase_times,
            insertions_per_pe=list(insertions),
            selection_stats=selection_result.stats if selection_result is not None else None,
            selection_ran=selection_ran,
            selection_skipped=selection_skipped,
            evicted_items=evicted,
            window_buffer_items=buffer_items,
        )

    # ------------------------------------------------------------------
    def sample_ids(self) -> np.ndarray:
        """Item ids of the current window sample (``min(k, live)`` ids)."""
        if self.threshold is None:
            parts = self.comm.run_per_pe(self._handle, pe_kernels.item_ids_kernel)
        else:
            parts = self.comm.run_per_pe(
                self._handle, pe_kernels.window_sample_ids_kernel, [(self.threshold,)] * self.p
            )
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def sample_items(self) -> List[Tuple[int, float]]:
        """The current sample as ``(item id, key)`` pairs (all PEs)."""
        if self.threshold is None:
            parts = self.comm.run_per_pe(self._handle, pe_kernels.items_kernel)
        else:
            parts = self.comm.run_per_pe(
                self._handle,
                pe_kernels.window_sample_items_kernel,
                [(self.threshold,)] * self.p,
            )
        return [(item_id, key) for items in parts for key, item_id in items]

    def sample_size(self) -> int:
        """Current size of the window sample."""
        return int(self.sample_ids().shape[0])

"""Exponential time-decay weighted reservoir sampling.

Instead of a hard window, every item's weight decays by a factor
``lambda`` per arrival step: at time ``t`` an item that arrived at ``t_i``
with weight ``w_i`` has effective weight ``w_i * lambda^(t - t_i)``.  Its
exponential key would be ``-ln(U) / (w_i * lambda^(t - t_i))``, which
appears to require rescanning all stored keys as ``t`` advances.  It does
not: factoring out ``lambda^(-t)`` (a positive constant shared by every
item at query time ``t``) leaves the *static* quantity

    ``s_i = (-ln(U) / w_i) * lambda^(t_i)``

whose order is time-invariant — the ``k`` smallest ``s_i`` are the ``k``
smallest decayed keys at **every** point in time.  Because ``lambda < 1``
makes ``lambda^(t_i)`` underflow for large arrival indices, the sampler
stores the key in log-space:

    ``L_i = ln(-ln(U)) - ln(w_i) + t_i * ln(lambda)``

New arrivals get ever-smaller log-keys, so old keys "decay in place"
relative to them without ever being touched, and the usual
threshold-prune-truncate machinery of the unbounded samplers applies
unchanged (pruning by the ``k``-th smallest ``L`` is sound because the
``L_i`` never change).  With ``lambda = 1`` the log-key is a monotone
transform of the plain exponential key, so the sampler degenerates to
exact classic weighted reservoir sampling — the equivalence tests rely on
this.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core import keys as keymod
from repro.core.sequential import ingest_keyed_batch
from repro.core.store import ReservoirStore, make_store, normalize_store_name
from repro.stream.items import ItemBatch
from repro.utils.rng import ensure_generator
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["decayed_log_keys", "DecayedReservoir"]


def decayed_log_keys(
    weights: np.ndarray, stamps: np.ndarray, log_decay: float, rng=None
) -> np.ndarray:
    """Log-space decayed keys ``ln(-ln U) - ln w + stamp * ln(lambda)``.

    Consumes the random stream exactly like
    :func:`repro.core.keys.exponential_keys` (one uniform deviate per item),
    so for ``log_decay == 0`` the produced order matches the classic
    exponential keys draw-for-draw.
    """
    weights = np.asarray(weights, dtype=np.float64)
    stamps = np.asarray(stamps, dtype=np.int64)
    if weights.shape[0] != stamps.shape[0]:
        raise ValueError("weights and stamps must have equal length")
    base = keymod.exponential_keys(weights, rng)
    with np.errstate(divide="ignore"):  # -ln(U) == 0 only for U == 1 exactly
        return np.log(base) + stamps.astype(np.float64) * log_decay


class DecayedReservoir:
    """Weighted reservoir sample under exponential time decay.

    At any time the reservoir is a weighted sample without replacement of
    size ``min(k, n)`` where item ``i`` carries the effective weight
    ``w_i * decay^(age_i)`` (age measured in arrival steps).  Uniform mode
    (``weighted=False``) uses ``w_i = 1``, i.e. pure recency weighting.

    Parameters
    ----------
    k:
        Sample size.
    decay:
        Per-item decay factor ``lambda`` in ``(0, 1]``; ``1`` disables
        decay and reproduces the classic weighted sampler exactly.
    weighted:
        Whether supplied item weights are used (``True``) or every item
        counts with weight one (``False``).
    seed:
        Seed or generator for the random key stream.
    store:
        Reservoir store backend (``"merge"`` default, or ``"btree"``).
    kernel_tier:
        Store merge implementation (``"numpy"``, ``"jit"`` or ``"auto"``,
        see :mod:`repro.core.jit_kernels`); key generation is dense and
        stays on numpy in every tier, so samples are tier-invariant.
    """

    def __init__(
        self,
        k: int,
        decay: float,
        *,
        weighted: bool = True,
        seed=None,
        store: str = "merge",
        kernel_tier: str = "numpy",
    ) -> None:
        self.k = check_positive_int(k, "k")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must lie in (0, 1], got {decay}")
        self.decay = float(decay)
        self.weighted = bool(weighted)
        self.store = normalize_store_name(store)
        self._log_decay = math.log(self.decay)
        self._rng = ensure_generator(seed)
        self._store: ReservoirStore = make_store(self.store, kernel_tier=kernel_tier)
        self._weights_by_id = {}
        self._items_seen = 0
        self._total_weight = 0.0
        self._insertions = 0

    # ------------------------------------------------------------------
    @property
    def items_seen(self) -> int:
        return self._items_seen

    @property
    def total_weight(self) -> float:
        return self._total_weight

    @property
    def size(self) -> int:
        return len(self._store)

    @property
    def insertions(self) -> int:
        return self._insertions

    @property
    def threshold(self) -> Optional[float]:
        """Current insertion threshold in **log-key space** (``None`` while
        filling).  Static keys make threshold pruning sound under decay."""
        if len(self._store) < self.k:
            return None
        return self._store.max_key()

    # ------------------------------------------------------------------
    def process(self, batch: ItemBatch) -> int:
        """Feed a batch; returns how many items entered the reservoir."""
        b = len(batch)
        if b == 0:
            return 0
        weights = batch.weights if self.weighted else np.ones(b, dtype=np.float64)
        stamps = np.arange(self._items_seen, self._items_seen + b, dtype=np.int64)
        keys = decayed_log_keys(weights, stamps, self._log_decay, self._rng)
        self._items_seen += b
        self._total_weight += batch.total_weight
        inserted = ingest_keyed_batch(
            self._store,
            keys,
            batch.ids,
            self.k,
            threshold=self.threshold,
            weights=weights,
            weights_by_id=self._weights_by_id,
        )
        self._insertions += inserted
        return inserted

    def insert(self, item_id: int, weight: float = 1.0) -> bool:
        """Feed one item; returns whether it entered the reservoir."""
        weight = check_positive(weight, "weight")
        batch = ItemBatch(
            ids=np.array([item_id], dtype=np.int64),
            weights=np.array([weight], dtype=np.float64),
        )
        return self.process(batch) > 0

    # ------------------------------------------------------------------
    def sample_ids(self) -> np.ndarray:
        """Item ids of the current sample (in increasing log-key order)."""
        return self._store.ids_array()

    def sample(self) -> List[Tuple[int, float]]:
        """The current sample as ``(item id, weight)`` pairs."""
        return [(int(i), self._weights_by_id[int(i)]) for i in self._store.ids_array()]

    def sample_with_keys(self) -> List[Tuple[float, int, float]]:
        """The current sample as ``(log key, id, weight)`` triples."""
        return [
            (key, int(item_id), self._weights_by_id[int(item_id)])
            for key, item_id in self._store.items()
        ]

"""Sequential sliding-window reservoir sampling.

A :class:`SlidingWindowReservoir` maintains a weighted (or uniform) sample
without replacement of size ``min(k, |window|)`` over the **last W items**
of the stream.  Every item receives the usual random key (exponential
``-ln(U)/w`` for weighted, uniform for unweighted sampling — see
:mod:`repro.core.keys`) and an arrival index; the candidate set lives in a
:class:`~repro.window.buffer.SlidingWindowBuffer`, which keeps the bounded
over-sample required for backfilling: when old items expire, the next
smallest live keys are already buffered, so the sample never has to look
back into the (discarded) stream.

Unlike the unbounded samplers there is no insertion threshold to skip
items under — an item that is currently uninteresting may become part of
the sample once everything smaller than it has expired.  The pruning rule
is instead the suffix-top-k invariant evaluated by the buffer, which keeps
the memory at ``O(k log W)`` in expectation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core import keys as keymod
from repro.stream.items import ItemBatch
from repro.utils.rng import ensure_generator
from repro.utils.validation import check_positive, check_positive_int
from repro.window.buffer import SlidingWindowBuffer

__all__ = ["SlidingWindowReservoir"]


class SlidingWindowReservoir:
    """Weighted/uniform reservoir sample over the last ``window`` items.

    Parameters
    ----------
    k:
        Sample size.
    window:
        Window length ``W`` in items: the sample covers the ``W`` most
        recently fed items.
    weighted:
        ``True`` (default) for weighted sampling with exponential keys,
        ``False`` for uniform sampling.
    seed:
        Seed or generator for the random key stream.
    """

    def __init__(self, k: int, window: int, *, weighted: bool = True, seed=None) -> None:
        self.k = check_positive_int(k, "k")
        self.window = check_positive_int(window, "window")
        self.weighted = bool(weighted)
        self._rng = ensure_generator(seed)
        self._buffer = SlidingWindowBuffer(self.k, track_weights=True)
        self._items_seen = 0
        self._total_weight = 0.0
        self._evicted = 0

    # ------------------------------------------------------------------
    @property
    def items_seen(self) -> int:
        return self._items_seen

    @property
    def total_weight(self) -> float:
        return self._total_weight

    @property
    def size(self) -> int:
        """Current sample size (``min(k, live window items)``)."""
        return min(self.k, len(self._buffer))

    @property
    def live_items(self) -> int:
        """Number of stream items currently inside the window."""
        return min(self._items_seen, self.window)

    @property
    def buffer_size(self) -> int:
        """Number of buffered candidates (the over-sample, ``O(k log W)``)."""
        return len(self._buffer)

    @property
    def evicted_items(self) -> int:
        """Total number of candidates expired out of the buffer so far."""
        return self._evicted

    @property
    def threshold(self) -> Optional[float]:
        """Key of the ``k``-th smallest live item (``None`` while filling).

        This is the *sample boundary*, not an insertion threshold: items
        above it must still be buffered for backfilling after expiry.
        """
        if len(self._buffer) < self.k:
            return None
        return self._buffer.kth_key(self.k)

    # ------------------------------------------------------------------
    def process(self, batch: ItemBatch) -> int:
        """Feed a batch; returns how many of its items entered the buffer."""
        b = len(batch)
        if b == 0:
            return 0
        if self.weighted:
            keys = keymod.exponential_keys(batch.weights, self._rng)
            weights = batch.weights
        else:
            keys = keymod.uniform_keys(b, self._rng)
            weights = np.ones(b, dtype=np.float64)  # uniform samples report unit weight
        stamps = np.arange(self._items_seen, self._items_seen + b, dtype=np.int64)
        kept = self._buffer.append(stamps, keys, batch.ids, weights)
        self._items_seen += b
        self._total_weight += batch.total_weight
        # live stamps are (now - W, now]; now == items_seen - 1
        self._evicted += self._buffer.evict_older_than(self._items_seen - 1 - self.window)
        return kept

    def insert(self, item_id: int, weight: float = 1.0) -> bool:
        """Feed one item; returns whether it entered the candidate buffer."""
        weight = check_positive(weight, "weight")
        batch = ItemBatch(
            ids=np.array([item_id], dtype=np.int64),
            weights=np.array([weight], dtype=np.float64),
        )
        return self.process(batch) > 0

    # ------------------------------------------------------------------
    def sample_ids(self) -> np.ndarray:
        """Item ids of the current window sample (in increasing key order)."""
        _, ids, _ = self._buffer.smallest(self.k)
        return ids

    def sample(self) -> List[Tuple[int, float]]:
        """The current sample as ``(item id, weight)`` pairs."""
        _, ids, weights = self._buffer.smallest(self.k)
        return list(zip(ids.tolist(), weights.tolist()))

    def sample_with_keys(self) -> List[Tuple[float, int, float]]:
        """The current sample as ``(key, id, weight)`` triples."""
        keys, ids, weights = self._buffer.smallest(self.k)
        return list(zip(keys.tolist(), ids.tolist(), weights.tolist()))

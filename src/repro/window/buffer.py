"""The sliding-window candidate buffer (priority-ordered expiry).

A reservoir under a sliding window cannot simply keep the ``k`` smallest
keys: when an item expires, its slot must be *backfilled* by an item that
was previously outside the top ``k`` — so a windowed sampler has to retain
a bounded over-sample of candidates.  The classic rule (Babcock, Datar and
Motwani's priority sampling) is the **suffix-top-k invariant**:

    keep an item if and only if fewer than ``k`` later-arriving items
    have a smaller key.

Dropping an item under this rule is *permanently* safe: its ``k``
dominators all arrived later, hence expire later, so the item could never
re-enter the sample while any window still contains it.  Conversely every
item of the current top ``k`` of the live window satisfies the invariant,
so the buffer always contains the exact ``k`` smallest live keys.  For a
window of ``W`` items the buffer holds ``k + k * ln(W / k)`` items in
expectation — logarithmic over-sampling, not ``W``.

:func:`suffix_topk_scan` evaluates the invariant for a whole
arrival-ordered key array with a chunked rear scan: a sorted array tracks
the ``k`` smallest keys of the suffix, and each chunk is vector-prefiltered
against its current bound (the bound only tightens towards the front, so
the prefilter is conservative), which keeps the interpreter-level work
proportional to the number of *surviving* candidates instead of the batch
size.  The scan also records each survivor's exact **dominator count**
(later items with a key at most its own), which is what makes appends
incremental: a later batch only has to *increment* the stored counts of
the buffered items — one vectorized ``searchsorted`` against the batch's
survivors — instead of rescanning the whole buffer.  (Counting only the
batch's survivors is exact for every item that remains kept: if a dropped
batch item had a key at most some buffered key, its own ``k`` dominators
chain down to ``k`` *surviving* dominators of that buffered item, which
is therefore dropped — so undercounts only ever happen to items that are
evicted anyway.)

:class:`SlidingWindowBuffer` packages the invariant with vectorized
expiry and the rank/select queries the distributed selection algorithms
need, so the same object serves the sequential sliding-window sampler and
the per-PE state of the distributed one.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["suffix_topk_scan", "suffix_topk_mask", "SlidingWindowBuffer"]


def suffix_topk_scan(
    keys: np.ndarray, k: int, *, chunk: int = 4096
) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate the suffix-top-k invariant over an arrival-ordered key array.

    Returns ``(keep, doms)``: ``keep[i]`` is ``True`` iff fewer than ``k``
    items after position ``i`` have a key at most ``keys[i]`` — i.e.
    ``keys[i]`` is among the ``k`` smallest keys of ``keys[i:]`` — and for
    every kept item ``doms[i]`` is the exact number of such dominators
    (dropped items only carry a lower bound).  Ties are resolved in favour
    of the later arrival (the one that expires last); with continuous
    random keys ties have measure zero, so this only matters for
    adversarial inputs.
    """
    keys = np.asarray(keys, dtype=np.float64)
    check_positive_int(k, "k")
    n = keys.shape[0]
    keep = np.zeros(n, dtype=bool)
    doms = np.zeros(n, dtype=np.int64)
    if n == 0:
        return keep, doms
    # ascending list of the k smallest keys of the scanned suffix; every
    # later item with a key below its bound is inside it, so the bisect
    # position is the exact dominator count (a plain list keeps the
    # per-candidate insert a C-level memmove)
    struct: List[float] = []
    keys_list = keys.tolist()
    pos = n
    while pos > 0:
        lo = max(0, pos - chunk)
        if len(struct) < k:
            candidates = np.arange(lo, pos, dtype=np.int64)
        else:
            # The bound only tightens while scanning towards the front, so
            # filtering against the bound at chunk entry never discards a
            # true survivor.
            candidates = lo + np.flatnonzero(keys[lo:pos] < struct[-1])
        for i in candidates[::-1].tolist():
            key = keys_list[i]
            if len(struct) < k or key < struct[-1]:
                j = bisect.bisect_right(struct, key)
                doms[i] = j
                keep[i] = True
                struct.insert(j, key)
                if len(struct) > k:
                    struct.pop()
        pos = lo
    return keep, doms


def suffix_topk_mask(keys: np.ndarray, k: int, *, chunk: int = 4096) -> np.ndarray:
    """Boolean keep-mask of :func:`suffix_topk_scan` (dominator counts dropped)."""
    return suffix_topk_scan(keys, k, chunk=chunk)[0]


class SlidingWindowBuffer:
    """Arrival-ordered candidate buffer maintaining the suffix-top-k invariant.

    The buffer stores ``(stamp, key, id[, weight])`` quadruples in arrival
    order.  :meth:`append` ingests a batch (re-establishing the invariant
    over the whole buffer), :meth:`evict_older_than` expires items by
    timestamp with a single vectorized mask, and the rank/select interface
    (``count_le``, ``kth_keys``, ``keys_in_rank_range``, …) exposes the
    *live* keys as a sorted multiset — the exact shape the distributed
    selection algorithms consume, so a buffer can stand in for a
    :class:`~repro.core.local_reservoir.LocalReservoir` behind the
    selection keysets.
    """

    def __init__(self, k: int, *, track_weights: bool = False, chunk: int = 4096) -> None:
        self.k = check_positive_int(k, "k")
        self.chunk = check_positive_int(chunk, "chunk")
        self._stamps = np.empty(0, dtype=np.int64)
        self._keys = np.empty(0, dtype=np.float64)
        self._ids = np.empty(0, dtype=np.int64)
        #: exact per-item dominator counts (later arrivals with key <= own)
        self._doms = np.empty(0, dtype=np.int64)
        self._weights: Optional[np.ndarray] = (
            np.empty(0, dtype=np.float64) if track_weights else None
        )
        # key-order cache: argsort of the keys plus the gathered sorted keys
        # (both invalidated together by append/evict)
        self._order: Optional[np.ndarray] = None
        self._sorted: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._keys.shape[0])

    @property
    def track_weights(self) -> bool:
        return self._weights is not None

    def stamps_array(self) -> np.ndarray:
        """Timestamps in arrival order."""
        return self._stamps.copy()

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Copy the full buffer contents for checkpointing.

        The exact dominator counts are part of the export: they encode how
        many *later* arrivals dominate each item, which cannot be
        reconstructed from the surviving items alone (evicted dominators
        are gone), so a restore must carry them verbatim to keep the
        suffix-top-k invariant byte-exact.
        """
        return {
            "k": self.k,
            "chunk": self.chunk,
            "stamps": self._stamps.copy(),
            "keys": self._keys.copy(),
            "ids": self._ids.copy(),
            "doms": self._doms.copy(),
            "weights": None if self._weights is None else self._weights.copy(),
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite the buffer contents with a previous :meth:`export_state`."""
        self.k = check_positive_int(int(state["k"]), "k")
        self.chunk = check_positive_int(int(state["chunk"]), "chunk")
        self._stamps = np.asarray(state["stamps"], dtype=np.int64).copy()
        self._keys = np.asarray(state["keys"], dtype=np.float64).copy()
        self._ids = np.asarray(state["ids"], dtype=np.int64).copy()
        self._doms = np.asarray(state["doms"], dtype=np.int64).copy()
        weights = state.get("weights")
        self._weights = None if weights is None else np.asarray(weights, dtype=np.float64).copy()
        self._order = None
        self._sorted = None

    # ------------------------------------------------------------------
    # ingestion and expiry
    # ------------------------------------------------------------------
    def append(
        self,
        stamps: np.ndarray,
        keys: np.ndarray,
        ids: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> int:
        """Append a batch (in arrival order) and re-establish the invariant.

        The batch must arrive after everything already buffered; within the
        batch, array order is arrival order.  Only the *batch* is scanned:
        buffered items are updated by incrementing their stored dominator
        counts with one vectorized ``searchsorted`` against the batch's
        survivors (exact for every item that stays — see the module
        docstring), so a single-item append costs ``O(buffer)`` numpy work
        with no interpreter-level loop.  Returns the number of *new* items
        that survived the scan.
        """
        stamps = np.asarray(stamps, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        if not stamps.shape[0] == keys.shape[0] == ids.shape[0]:
            raise ValueError("stamps, keys and ids must have equal length")
        if self._weights is not None:
            if weights is None:
                raise ValueError("buffer tracks weights; pass the weight array")
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape[0] != keys.shape[0]:
                raise ValueError("weights must align with keys")
        if stamps.shape[0] == 0:
            return 0
        if self._stamps.shape[0] and int(stamps[0]) < int(self._stamps[-1]):
            raise ValueError(
                f"batch stamps start at {int(stamps[0])}, before the newest buffered "
                f"stamp {int(self._stamps[-1])}; batches must arrive in stamp order"
            )
        new_keep, new_doms = suffix_topk_scan(keys, self.k, chunk=self.chunk)
        keys, stamps, ids = keys[new_keep], stamps[new_keep], ids[new_keep]
        new_doms = new_doms[new_keep]
        if self._weights is not None:
            weights = weights[new_keep]
        kept_new = int(keys.shape[0])
        if self._keys.shape[0]:
            # every batch survivor arrived later than every buffered item
            self._doms += np.searchsorted(np.sort(keys), self._keys, side="right")
            old_keep = self._doms < self.k
            if not old_keep.all():
                self._stamps = self._stamps[old_keep]
                self._keys = self._keys[old_keep]
                self._ids = self._ids[old_keep]
                self._doms = self._doms[old_keep]
                if self._weights is not None:
                    self._weights = self._weights[old_keep]
        self._stamps = np.concatenate([self._stamps, stamps])
        self._keys = np.concatenate([self._keys, keys])
        self._ids = np.concatenate([self._ids, ids])
        self._doms = np.concatenate([self._doms, new_doms])
        if self._weights is not None:
            self._weights = np.concatenate([self._weights, weights])
        self._order = None
        self._sorted = None
        return kept_new

    def evict_older_than(self, cutoff: int) -> int:
        """Drop every item with ``stamp <= cutoff``; returns how many.

        Expired items are the oldest, so they are never dominators of the
        remaining items — the stored counts stay exact.
        """
        if not len(self):
            return 0
        live = self._stamps > cutoff
        evicted = int(live.shape[0] - np.count_nonzero(live))
        if evicted:
            self._stamps = self._stamps[live]
            self._keys = self._keys[live]
            self._ids = self._ids[live]
            self._doms = self._doms[live]
            if self._weights is not None:
                self._weights = self._weights[live]
            self._order = None
            self._sorted = None
        return evicted

    # ------------------------------------------------------------------
    # sorted-by-key view (selection interface)
    # ------------------------------------------------------------------
    def _key_order(self) -> np.ndarray:
        if self._order is None:
            self._order = np.argsort(self._keys, kind="stable")
            self._sorted = self._keys[self._order]
        return self._order

    def _sorted_keys(self) -> np.ndarray:
        self._key_order()
        return self._sorted

    def count_le(self, key: float) -> int:
        return int(np.searchsorted(self._sorted_keys(), key, side="right"))

    def count_less(self, key: float) -> int:
        return int(np.searchsorted(self._sorted_keys(), key, side="left"))

    def kth_key(self, rank: int) -> float:
        """The ``rank``-th smallest live key (1-based)."""
        if not 1 <= rank <= len(self):
            raise IndexError(f"rank {rank} out of range for buffer of size {len(self)}")
        return float(self._sorted_keys()[rank - 1])

    def kth_keys(self, ranks: np.ndarray) -> np.ndarray:
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size and (ranks.min() < 1 or ranks.max() > len(self)):
            raise IndexError(f"ranks out of range 1..{len(self)}")
        return self._sorted_keys()[ranks - 1].copy()

    def keys_in_rank_range(self, lo: int, hi: int) -> np.ndarray:
        return self._sorted_keys()[lo:hi].copy()

    def max_key(self) -> float:
        if not len(self):
            raise IndexError("empty buffer has no max key")
        return float(self._sorted_keys()[-1])

    def min_key(self) -> float:
        if not len(self):
            raise IndexError("empty buffer has no min key")
        return float(self._sorted_keys()[0])

    def keys_array(self) -> np.ndarray:
        """All live keys, sorted ascending."""
        return self._sorted_keys().copy()

    def item_ids(self) -> np.ndarray:
        """All live item ids, in increasing key order."""
        return self._ids[self._key_order()].copy()

    def items(self) -> List[Tuple[float, int]]:
        """(key, item id) pairs of the live buffer in increasing key order."""
        order = self._key_order()
        return list(zip(self._keys[order].tolist(), self._ids[order].tolist()))

    # ------------------------------------------------------------------
    # sample extraction
    # ------------------------------------------------------------------
    def smallest(self, count: int) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """``(keys, ids, weights)`` of the ``count`` smallest keys (key order).

        ``weights`` is ``None`` unless the buffer tracks weights.  By the
        invariant these are exactly the ``count`` smallest keys of the live
        window whenever ``count <= k``.
        """
        count = min(int(count), len(self))
        order = self._key_order()[:count]
        weights = self._weights[order].copy() if self._weights is not None else None
        return self._keys[order].copy(), self._ids[order].copy(), weights

    def ids_at_most(self, threshold: float) -> np.ndarray:
        """Ids of the live items with ``key <= threshold``, in key order."""
        order = self._key_order()[: self.count_le(threshold)]
        return self._ids[order].copy()

    def items_at_most(self, threshold: float) -> List[Tuple[float, int]]:
        """(key, id) pairs with ``key <= threshold``, in key order."""
        order = self._key_order()[: self.count_le(threshold)]
        return list(zip(self._keys[order].tolist(), self._ids[order].tolist()))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SlidingWindowBuffer(k={self.k}, size={len(self)})"

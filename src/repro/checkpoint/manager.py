"""Checkpoint directory management: periodic saves, latest-file discovery.

A :class:`CheckpointManager` owns one directory of numbered checkpoint
files (``ckpt-00000042.rpk`` = the state *after* 42 completed rounds).
The round number lives in the file name so that discovering the newest
restorable state needs no file reads, and pruning keeps the directory
bounded on long runs.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.checkpoint.format import CheckpointError, load_checkpoint_file, save_checkpoint_file
from repro.obs.log import get_logger
from repro.obs.tracer import NULL_TRACER

__all__ = ["CheckpointManager", "CHECKPOINT_SUFFIX"]

#: file extension of managed checkpoint files
CHECKPOINT_SUFFIX = ".rpk"

_logger = get_logger("checkpoint")


class CheckpointManager:
    """Periodic checkpoints in one directory, newest-first restore.

    Parameters
    ----------
    directory:
        Where the checkpoint files live; created on first save.
    every:
        Save cadence in completed rounds (``None`` disables periodic
        saves; explicit :meth:`save` calls still work).
    keep:
        How many checkpoint files to retain (oldest pruned first).
        ``0``/``None`` keeps everything.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        every: Optional[int] = None,
        keep: Optional[int] = 3,
    ) -> None:
        if every is not None and every < 1:
            raise ValueError(f"checkpoint_every must be a positive round count, got {every}")
        if keep is not None and keep < 0:
            raise ValueError(f"keep must be non-negative, got {keep}")
        self.directory = Path(directory)
        self.every = every
        self.keep = keep or None
        #: tracing hook; drivers with an attached collector swap in a
        #: real tracer so save/restore time shows up in the trace
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    def path_for_round(self, rounds_completed: int) -> Path:
        return self.directory / f"ckpt-{rounds_completed:08d}{CHECKPOINT_SUFFIX}"

    def should_checkpoint(self, rounds_completed: int) -> bool:
        """Whether the periodic cadence asks for a save after this round."""
        return (
            self.every is not None
            and rounds_completed > 0
            and rounds_completed % self.every == 0
        )

    # ------------------------------------------------------------------
    def save(self, rounds_completed: int, payload: object) -> Path:
        """Write a checkpoint for ``rounds_completed`` and prune old files."""
        with self.tracer.span("checkpoint.save", cat="checkpoint", round=rounds_completed):
            path = save_checkpoint_file(self.path_for_round(rounds_completed), payload)
        _logger.debug("saved checkpoint %s (after %d rounds)", path.name, rounds_completed)
        self._prune()
        return path

    def _prune(self) -> None:
        if self.keep is None:
            return
        existing = self.list_checkpoints()
        for _, path in existing[: max(0, len(existing) - self.keep)]:
            try:
                path.unlink()
                _logger.debug("pruned checkpoint %s (keep=%d)", path.name, self.keep)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def list_checkpoints(self) -> List[Tuple[int, Path]]:
        """``(rounds_completed, path)`` pairs, oldest first."""
        if not self.directory.is_dir():
            return []
        found = []
        for path in self.directory.iterdir():
            match = re.match(r"^ckpt-(\d{8})" + re.escape(CHECKPOINT_SUFFIX) + r"$", path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found)

    def latest_path(self) -> Optional[Path]:
        """Path of the newest checkpoint, or ``None`` when there is none."""
        checkpoints = self.list_checkpoints()
        return checkpoints[-1][1] if checkpoints else None

    def load_latest(self) -> Tuple[int, object]:
        """Load the newest checkpoint; returns ``(rounds_completed, payload)``."""
        checkpoints = self.list_checkpoints()
        if not checkpoints:
            raise CheckpointError(
                f"no checkpoints found in {self.directory} — nothing to restore from"
            )
        rounds_completed, path = checkpoints[-1]
        with self.tracer.span("checkpoint.restore", cat="checkpoint", round=rounds_completed):
            payload = load_checkpoint_file(path)
        _logger.debug("restored checkpoint %s (after %d rounds)", path.name, rounds_completed)
        return rounds_completed, payload

"""Elastic re-sharding: resume a checkpointed sampler on a different ``p``.

Changing the PE count invalidates the byte-identity contract — the
per-PE random streams, shard layouts and collective schedules all depend
on ``p`` — but not *correctness*: the sampler state that matters globally
is the multiset of surviving (key, id) pairs plus the threshold and the
stream counters, none of which care how the pairs are distributed over
PEs.  Re-sharding therefore

1. concatenates every PE's exported reservoir contents,
2. deals the pairs round-robin onto the new PE grid (balanced, order
   deterministic), and installs them via the samplers' ``preload`` path,
3. carries the threshold / items-seen / total-weight counters over, and
4. restarts the stream as PE-interleaved **variable** shards (the
   resizable-shard layout of the async-pipeline work) whose
   ``id_offset`` starts past every id the old layout emitted — so the
   phases can never collide on item ids.

The statistical contract — every item's inclusion probability is
unchanged by a mid-stream reshard — is enforced by the chi-squared test
in ``tests/checkpoint/test_elastic.py`` across a p=4→2→6 schedule.

Limits: elastic resume supports the ``"ours"`` family (weighted and
uniform, fixed ``k``).  The windowed sampler would additionally need its
stamp clock re-sharded, the variable-size sampler its selection-cadence
counters re-derived, and the centralized baseline holds no distributed
state worth re-sharding — all three raise an actionable error instead.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.checkpoint.format import CheckpointError

__all__ = [
    "collect_reservoir_pairs",
    "deal_pairs",
    "next_free_stream_id",
    "check_reshardable",
]

#: sampler types whose checkpoints may be resumed on a different p
RESHARDABLE_TYPES = (
    "DistributedReservoirSampler",
    "DistributedWeightedReservoirSampler",
    "DistributedUniformReservoirSampler",
)


def check_reshardable(sampler_snapshot: Dict[str, object]) -> None:
    """Raise :class:`CheckpointError` if the snapshot cannot be re-sharded."""
    sampler_type = sampler_snapshot.get("sampler_type")
    if sampler_type not in RESHARDABLE_TYPES:
        raise CheckpointError(
            f"elastic resume (different p) is not supported for {sampler_type}; it is "
            "limited to the fixed-k 'ours' samplers — resume with the original p, or run "
            "the variant to completion and start a new run"
        )
    if any(pe.get("prepared") is not None for pe in sampler_snapshot["per_pe"]):
        raise CheckpointError(
            "checkpoint holds an in-flight pipelined prepare; elastic resume needs a "
            "between-rounds checkpoint (take one with pipeline='off' rounds or finish() first)"
        )


def collect_reservoir_pairs(sampler_snapshot: Dict[str, object]) -> List[Tuple[float, int]]:
    """All surviving (key, id) pairs across the old PE grid, key-sorted.

    Key order makes the deal deterministic regardless of the old ``p``;
    ties (impossible for float64 exponential keys in practice) fall back
    to id order.
    """
    keys_parts, ids_parts = [], []
    for pe_snapshot in sampler_snapshot["per_pe"]:
        reservoir = pe_snapshot.get("reservoir")
        if reservoir is None:
            continue
        keys_parts.append(np.asarray(reservoir["keys"], dtype=np.float64))
        ids_parts.append(np.asarray(reservoir["ids"], dtype=np.int64))
    if not keys_parts:
        return []
    keys = np.concatenate(keys_parts)
    ids = np.concatenate(ids_parts)
    order = np.lexsort((ids, keys))
    return [(float(k), int(i)) for k, i in zip(keys[order], ids[order])]


def deal_pairs(pairs: List[Tuple[float, int]], new_p: int) -> List[List[Tuple[float, int]]]:
    """Deal the pairs round-robin onto ``new_p`` PEs (balanced within 1)."""
    if new_p < 1:
        raise CheckpointError(f"elastic resume needs p >= 1, got {new_p}")
    return [pairs[pe::new_p] for pe in range(new_p)]


def next_free_stream_id(run_snapshot: Dict[str, object]) -> int:
    """First item id the resharded stream may emit without colliding.

    Worker-shard runs record each shard's exclusive id upper bound
    (``id_high``); driver-stream runs record the stream's ``_next_id``.
    The maximum over all sources is collision-free by construction.
    """
    high = 0
    for pe_snapshot in run_snapshot["sampler"]["per_pe"]:
        stream = pe_snapshot.get("stream")
        if stream is not None:
            high = max(high, int(stream["id_high"]))
    driver_stream = run_snapshot.get("driver_stream")
    if driver_stream is not None:
        high = max(high, int(getattr(driver_stream, "_next_id", 0)))
    return high

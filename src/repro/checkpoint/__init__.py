"""Checkpoint/restore for the distributed sampling runs.

The resilience layer of the library: every sampler variant's complete
mutable state — per-PE keysets, both random generators, stream-shard
replay positions, window buffers, the threshold and all driver counters
— can be serialized into a versioned, checksummed file and restored to
continue **byte-identically** on either execution backend.

* :mod:`~repro.checkpoint.format` — the on-disk envelope (magic, format
  version, length, CRC-32) with actionable errors for truncated,
  corrupted, foreign and future-version files; atomic writes.
* :mod:`~repro.checkpoint.manager` — periodic numbered checkpoints in a
  directory, latest-file discovery, pruning.
* :mod:`~repro.checkpoint.state` — sampler/engine state capture built on
  the per-PE export/import kernels of :mod:`repro.core.pe_kernels`.
* :mod:`~repro.checkpoint.elastic` — resume on a *different* PE count:
  re-deal the surviving (key, id) pairs, restart the stream on the
  PE-interleaved variable shard layout past every emitted id.

High-level entry points live on
:class:`repro.core.api.DistributedSamplingRun` (``checkpoint_every=``,
``checkpoint_dir=``, ``save_checkpoint()``, ``resume()``) and
:class:`repro.core.api.ReservoirSampler` (``save()`` / ``load()``);
worker-death recovery in
:class:`repro.network.process_comm.ProcessComm` replays from these
checkpoints.
"""

from repro.checkpoint.format import (
    FORMAT_VERSION,
    MAGIC,
    CheckpointError,
    dump_envelope,
    load_checkpoint_file,
    load_envelope,
    save_checkpoint_file,
)
from repro.checkpoint.manager import CHECKPOINT_SUFFIX, CheckpointManager
from repro.checkpoint.state import (
    restore_engine,
    restore_sampler,
    restore_summary,
    snapshot_engine,
    snapshot_sampler,
    snapshot_summary,
)

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "CHECKPOINT_SUFFIX",
    "FORMAT_VERSION",
    "MAGIC",
    "dump_envelope",
    "load_envelope",
    "save_checkpoint_file",
    "load_checkpoint_file",
    "snapshot_sampler",
    "restore_sampler",
    "snapshot_summary",
    "restore_summary",
    "snapshot_engine",
    "restore_engine",
]

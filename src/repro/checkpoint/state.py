"""Sampler and pipeline-engine state capture for checkpoints.

The samplers are pure functions of (per-PE keyset state, per-PE rng
state, driver counters, threshold), so a checkpoint is exactly those
pieces:

* **per-PE state** — exported *inside* the execution backend by
  :func:`repro.core.pe_kernels.export_pe_state_kernel` (reservoir or
  window-buffer contents, both generators' bit-generator states, the
  stream shard's replay position, any parked prepared batch) and
  re-imported by :func:`~repro.core.pe_kernels.import_pe_state_kernel`;
* **driver state** — the coordinator-side mutable counters of each
  sampler family (threshold, items seen, total weight, round index, the
  variable-size selection counters, the window stamp/eviction counters)
  plus, for the centralized baseline, the root reservoir contents;
* **engine state** — for pipelined runs, the engine's round counter and
  the *joined results* of an in-flight prepare: the checkpoint drains
  the pending future and re-arms it as an already-completed future, so
  a resumed run and the continued original run execute identically.

Everything here round-trips byte-identically: restoring a snapshot and
continuing produces the same ``sample_ids()`` as never having stopped
(enforced by the hypothesis property in ``tests/checkpoint/``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.checkpoint.format import CheckpointError
from repro.core import pe_kernels

__all__ = [
    "snapshot_sampler",
    "restore_sampler",
    "snapshot_summary",
    "restore_summary",
    "snapshot_engine",
    "restore_engine",
]

#: coordinator-side mutable attributes, superset across sampler families;
#: only the attributes a sampler actually has are captured/restored
_DRIVER_FIELDS = (
    "threshold",
    "_items_seen",
    "_total_weight",
    "_round",
    "_has_worker_stream",
    # variable-size sampler
    "selections_run",
    "rounds_without_selection",
    # distributed sliding window
    "_next_stamp",
    "_max_stamp",
    "_evicted_total",
    "_selection_skips",
)

_MISSING = object()


def snapshot_sampler(sampler) -> Dict[str, object]:
    """Capture a distributed sampler's complete mutable state."""
    driver = {}
    for name in _DRIVER_FIELDS:
        value = getattr(sampler, name, _MISSING)
        if value is not _MISSING:
            driver[name] = value
    snapshot: Dict[str, object] = {
        "sampler_type": type(sampler).__name__,
        "p": sampler.p,
        "k": sampler.k,
        "driver": driver,
        "per_pe": sampler.comm.run_per_pe(sampler._handle, pe_kernels.export_pe_state_kernel),
    }
    root_reservoir = getattr(sampler, "_reservoir", None)
    if root_reservoir is not None:  # centralized baseline: reservoir lives at the root
        snapshot["root_reservoir"] = {
            "keys": root_reservoir.keys_array(),
            "ids": root_reservoir.ids_array(),
        }
    return snapshot


def restore_sampler(sampler, snapshot: Dict[str, object]) -> None:
    """Restore a freshly constructed sampler to a snapshot's state.

    The sampler must have been built with the same constructor arguments
    (algorithm family, ``k``, ``p``, store, kernel tier, seed) as the one
    the snapshot was taken from; the type and shape checks below catch
    the common mismatches with actionable errors.
    """
    if snapshot.get("sampler_type") != type(sampler).__name__:
        raise CheckpointError(
            f"checkpoint holds a {snapshot.get('sampler_type')} state but the run built a "
            f"{type(sampler).__name__} — algorithm/window/weighted settings must match the "
            "checkpointed run"
        )
    per_pe: List[dict] = snapshot["per_pe"]
    if len(per_pe) != sampler.p:
        raise CheckpointError(
            f"checkpoint holds state for p={len(per_pe)} PEs but the run has p={sampler.p}; "
            "pass p explicitly to resume() to re-shard elastically"
        )
    sampler.comm.run_per_pe(
        sampler._handle,
        pe_kernels.import_pe_state_kernel,
        [(pe_snapshot,) for pe_snapshot in per_pe],
    )
    for name, value in snapshot["driver"].items():
        setattr(sampler, name, value)
    root = snapshot.get("root_reservoir")
    if root is not None:
        from repro.core.store import make_store

        store = make_store(sampler.store, kernel_tier=sampler.kernel_tier)
        keys = np.asarray(root["keys"], dtype=np.float64)
        ids = np.asarray(root["ids"], dtype=np.int64)
        if keys.shape[0]:
            store.insert_batch(keys, ids)
        sampler._reservoir = store


# ---------------------------------------------------------------------------
# summaries (repro.summaries)
# ---------------------------------------------------------------------------
#: summaries whose complete mutable state fits the sampler checkpoint
#: format: reservoir-shaped per-PE keysets + generators + driver counters
_SNAPSHOTTABLE_SUMMARIES = ("DistributedTopK", "RecencyReservoir")

#: summary types that carry state outside the per-PE keyset export, with
#: the reason restore would be silently wrong for each
_UNSUPPORTED_SUMMARIES = {
    "HeavyHitters": "its Misra-Gries counter tables and error bounds live outside the keyset",
    "StreamingQuantiles": "its quantile cursors and reselection counters live outside the keyset",
}

def _check_summary_type(name: str, verb: str) -> None:
    if name in _SNAPSHOTTABLE_SUMMARIES:
        return
    reason = _UNSUPPORTED_SUMMARIES.get(name, "it is not a known snapshot-capable summary")
    raise CheckpointError(
        f"cannot {verb} a {name}: {reason}. Checkpointable summaries: "
        f"{', '.join(_SNAPSHOTTABLE_SUMMARIES)} — for a {name}, re-ingest the stream "
        "(or persist its query results) instead"
    )


def snapshot_summary(summary) -> Dict[str, object]:
    """Capture a summary's complete mutable state (top-k / recency only).

    Uses the sampler capture path — the snapshot-capable summaries keep
    their entire per-PE state in the same reservoir-shaped slots the
    samplers use — tagged with ``summary_type`` instead of
    ``sampler_type`` so sampler and summary checkpoints cannot be mixed
    up.  Raises :class:`CheckpointError` with the reason for the summary
    families whose state the format cannot represent.
    """
    _check_summary_type(type(summary).__name__, "snapshot")
    snapshot = snapshot_sampler(summary)
    snapshot["summary_type"] = snapshot.pop("sampler_type")
    return snapshot


def restore_summary(summary, snapshot: Dict[str, object]) -> None:
    """Restore a freshly constructed summary from a :func:`snapshot_summary`.

    The summary must have been built with the same constructor arguments
    (``k``, ``p``, recency multiplier, seed, kernel tier) as the one the
    snapshot was taken from.
    """
    _check_summary_type(type(summary).__name__, "restore")
    if "summary_type" not in snapshot:
        kind = snapshot.get("sampler_type", "<unknown>")
        raise CheckpointError(
            f"checkpoint holds a sampler state ({kind}), not a summary — restore it with "
            "restore_sampler onto the matching sampler type"
        )
    relabeled = dict(snapshot)
    relabeled["sampler_type"] = relabeled.pop("summary_type")
    restore_sampler(summary, relabeled)


# ---------------------------------------------------------------------------
# pipeline engines
# ---------------------------------------------------------------------------
def snapshot_engine(engine) -> Optional[Dict[str, object]]:
    """Capture a pipeline engine's state, draining any in-flight prepare.

    Delegates to the engine's own
    :meth:`~repro.pipeline.engine._PipelineEngineBase.export_state`,
    which joins a pending prepare and re-arms it on the live engine as an
    already-completed future.  Call this BEFORE :func:`snapshot_sampler`
    so the per-PE export sees the parked prepared batch.
    """
    if engine is None:
        return None
    return engine.export_state()


def restore_engine(engine, snapshot: Optional[Dict[str, object]]) -> None:
    """Re-arm a freshly built engine from a :func:`snapshot_engine` capture."""
    if engine is None and snapshot is None:
        return
    if engine is None or snapshot is None:
        raise CheckpointError(
            "checkpoint and run disagree about pipelining — resume with the same "
            "pipeline= mode the checkpointed run used"
        )
    try:
        engine.import_state(snapshot)
    except ValueError as exc:
        raise CheckpointError(
            f"{exc}; resume with the same pipeline= mode the checkpointed run used"
        ) from exc

"""Versioned on-disk checkpoint envelope.

A checkpoint file is a small binary envelope around a pickled payload::

    offset  size  field
    0       8     magic  b"RPROCKPT"
    8       4     format version (unsigned little-endian)
    12      8     payload length in bytes (unsigned little-endian)
    20      4     CRC-32 of the payload (unsigned little-endian)
    24      n     pickled payload

The envelope exists so that *every* failure mode of a restore is
distinguishable and produces an actionable :class:`CheckpointError`
instead of a confusing pickle traceback or — worse — a silently wrong
sampler state:

* wrong magic → "not a checkpoint" (someone pointed the restore at an
  arbitrary file),
* version above :data:`FORMAT_VERSION` → "written by a newer version"
  (downgrade-after-upgrade; the payload schema may have changed),
* payload shorter than the recorded length → "truncated" (crashed or
  interrupted writer, partial copy),
* CRC mismatch → "corrupted" (bit rot, concurrent overwrite).

Writes are atomic: the envelope is written to a temporary sibling file,
flushed and fsynced, then :func:`os.replace`-d over the destination — a
reader never observes a half-written checkpoint under POSIX rename
semantics.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import zlib
from pathlib import Path
from typing import Union

__all__ = [
    "CheckpointError",
    "FORMAT_VERSION",
    "MAGIC",
    "dump_envelope",
    "load_envelope",
    "save_checkpoint_file",
    "load_checkpoint_file",
]

#: file magic; changing it invalidates every existing checkpoint
MAGIC = b"RPROCKPT"
#: current envelope format version (bump on payload schema changes)
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sIQI")  # magic, version, payload length, crc32


class CheckpointError(RuntimeError):
    """A checkpoint could not be written or restored.

    The message always states *what* is wrong with the file (not a
    checkpoint / future version / truncated / corrupted) and what the
    caller can do about it.
    """


def dump_envelope(payload_obj: object) -> bytes:
    """Serialize ``payload_obj`` into a versioned, checksummed envelope."""
    try:
        payload = pickle.dumps(payload_obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable user objects (custom streams, ...)
        raise CheckpointError(
            f"checkpoint payload is not picklable: {exc!r}; custom stream or weight-generator "
            "objects attached to a run must support pickle to be checkpointable"
        ) from exc
    header = _HEADER.pack(MAGIC, FORMAT_VERSION, len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
    return header + payload


def load_envelope(data: bytes, *, source: str = "<bytes>") -> object:
    """Validate an envelope and return the deserialized payload."""
    if len(data) < _HEADER.size:
        raise CheckpointError(
            f"{source}: file is only {len(data)} bytes, shorter than the {_HEADER.size}-byte "
            "checkpoint header — the checkpoint is truncated (interrupted write or partial copy); "
            "restore from an earlier checkpoint"
        )
    magic, version, length, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CheckpointError(
            f"{source}: bad magic {magic!r} — this is not a repro checkpoint file"
        )
    if version > FORMAT_VERSION:
        raise CheckpointError(
            f"{source}: checkpoint format version {version} is newer than the supported "
            f"version {FORMAT_VERSION} — it was written by a newer release; upgrade the "
            "library (or re-create the checkpoint with this version)"
        )
    payload = data[_HEADER.size :]
    if len(payload) < length:
        raise CheckpointError(
            f"{source}: payload is {len(payload)} bytes but the header records {length} — "
            "the checkpoint is truncated (interrupted write or partial copy); restore from "
            "an earlier checkpoint"
        )
    payload = payload[:length]
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise CheckpointError(
            f"{source}: payload checksum mismatch — the checkpoint is corrupted; restore "
            "from an earlier checkpoint"
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(
            f"{source}: payload passed its checksum but failed to deserialize ({exc!r}) — "
            "it may reference classes from a different library version"
        ) from exc


def save_checkpoint_file(path: Union[str, Path], payload_obj: object) -> Path:
    """Atomically write ``payload_obj`` as a checkpoint file at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = dump_envelope(payload_obj)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_checkpoint_file(path: Union[str, Path]) -> object:
    """Read and validate a checkpoint file; returns the payload."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint file at {path}") from None
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    return load_envelope(data, source=str(path))

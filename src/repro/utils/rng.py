"""Random number generator management.

The distributed algorithms in this package are simulated SPMD programs: the
same logical program runs on ``p`` processing elements (PEs).  Each PE must
own an *independent* random stream so that simulated runs are reproducible
and statistically sound regardless of the interleaving in which the
simulator executes the PEs.  We derive per-PE generators from a single seed
using :class:`numpy.random.SeedSequence` spawning, which guarantees
independence between the spawned streams.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]

__all__ = [
    "ensure_generator",
    "derive_generator",
    "spawn_seed_sequences",
    "spawn_generators",
]


def ensure_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, a sequence of
    integers, a :class:`~numpy.random.SeedSequence` or an existing
    generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed: SeedLike, count: int) -> List[np.random.SeedSequence]:
    """Spawn ``count`` independent seed sequences derived from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a fresh SeedSequence from the generator's bit stream so that
        # repeated calls yield different, but still reproducible, spawns.
        entropy = int(seed.integers(0, 2**63 - 1))
        root = np.random.SeedSequence(entropy)
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return list(root.spawn(count))


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent generators derived from ``seed``.

    This is the canonical way to obtain one generator per simulated PE.
    """
    return [np.random.default_rng(ss) for ss in spawn_seed_sequences(seed, count)]


def derive_generator(seed: SeedLike, *keys: int) -> np.random.Generator:
    """Derive a generator from ``seed`` and a tuple of integer ``keys``.

    Useful for obtaining per-(PE, round) streams without storing every
    generator explicitly: ``derive_generator(seed, pe, round)``.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError("derive_generator requires a seed, not a Generator")
    if isinstance(seed, np.random.SeedSequence):
        base_entropy = seed.entropy
    else:
        base_entropy = seed
    if base_entropy is None:
        base_entropy = 0
    if isinstance(base_entropy, (list, tuple)):
        combined = list(base_entropy) + [int(key) for key in keys]
    else:
        combined = [int(base_entropy)] + [int(key) for key in keys]
    return np.random.default_rng(np.random.SeedSequence(combined))

"""Argument validation helpers used across the package.

These helpers raise informative :class:`ValueError`/:class:`TypeError`
exceptions so public-API misuse fails fast with a clear message rather than
deep inside a numerical kernel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_weights",
]


def check_positive_int(value: int, name: str, *, allow_zero: bool = False) -> int:
    """Validate that ``value`` is a (strictly) positive integer and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    lower = 0 if allow_zero else 1
    if value < lower:
        comparison = "non-negative" if allow_zero else "positive"
        raise ValueError(f"{name} must be {comparison}, got {value}")
    return value


def check_positive(value: float, name: str, *, allow_zero: bool = False) -> float:
    """Validate that ``value`` is a (strictly) positive finite float."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if allow_zero:
        if value < 0.0:
            raise ValueError(f"{name} must be non-negative, got {value}")
    elif value <= 0.0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_probability(value: float, name: str, *, allow_zero: bool = False, allow_one: bool = True) -> float:
    """Validate that ``value`` is a probability in ``(0, 1]`` (by default)."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    low_ok = value >= 0.0 if allow_zero else value > 0.0
    high_ok = value <= 1.0 if allow_one else value < 1.0
    if not (low_ok and high_ok):
        raise ValueError(f"{name} must be a probability in the valid range, got {value}")
    return value


def check_weights(weights: np.ndarray, name: str = "weights") -> np.ndarray:
    """Validate an array of item weights: finite and strictly positive."""
    arr = np.asarray(weights, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite")
    if arr.size and np.any(arr <= 0.0):
        raise ValueError(f"{name} must be strictly positive")
    return arr

"""Shared utilities: random-number management and argument validation."""

from repro.utils.rng import (
    derive_generator,
    ensure_generator,
    spawn_generators,
    spawn_seed_sequences,
)
from repro.utils.validation import (
    check_positive,
    check_positive_int,
    check_probability,
    check_weights,
)

__all__ = [
    "derive_generator",
    "ensure_generator",
    "spawn_generators",
    "spawn_seed_sequences",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_weights",
]

"""The ``repro`` stdlib-logging hierarchy and worker log forwarding.

The library logs under one root logger, ``"repro"``, with per-subsystem
children (``repro.network``, ``repro.checkpoint``, ``repro.pipeline``,
…).  Following library convention the root gets a ``NullHandler``, so a
consumer that configures nothing sees nothing; enabling diagnostics is
the usual ::

    import logging
    logging.getLogger("repro").setLevel(logging.DEBUG)
    logging.basicConfig()

Worker processes of the multiprocess backend have no terminal of their
own: :func:`install_worker_log_buffer` attaches a bounded buffering
handler to the worker's ``repro`` logger, records carry the worker's
rank and current epoch, and the coordinator drains them over the
existing command pipes (the ``"logs"`` worker command and the trace
drain path both do) and re-emits them through its *own* ``repro``
hierarchy via :func:`replay_worker_records` — tagged
``[worker r<rank> e<epoch>]`` so interleaved output stays attributable.
"""

from __future__ import annotations

import logging
from collections import deque
from typing import List, Optional, Tuple

__all__ = [
    "get_logger",
    "install_worker_log_buffer",
    "uninstall_worker_log_buffer",
    "drain_worker_log_records",
    "set_worker_log_epoch",
    "set_worker_eager_forwarder",
    "replay_worker_records",
    "WorkerLogBuffer",
    "EAGER_FORWARD_LEVEL",
]

#: root logger name of the library hierarchy
ROOT_LOGGER = "repro"

#: worker record: (levelno, logger name, message, rank, epoch, created)
WorkerLogRecord = Tuple[int, str, str, int, int, float]

#: records at or above this level are shipped eagerly (not only on drain)
EAGER_FORWARD_LEVEL = logging.WARNING

# a consumer that configures no handlers must see no "No handlers could
# be found" noise — standard library-logging convention
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger in the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + ".") or name == ROOT_LOGGER:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


class WorkerLogBuffer(logging.Handler):
    """Bounded in-memory record buffer installed in worker processes.

    Records are flattened to picklable tuples at emit time (live
    ``LogRecord`` objects can reference unpicklable args).  The deque is
    bounded: if nobody drains, old records age out instead of growing
    without bound.

    Records at or above :data:`EAGER_FORWARD_LEVEL` are additionally
    offered to an ``eager_forward`` callable when one is registered (the
    health plumbing ships them over the beat queue): a record buffered in
    a worker that dies before the next drain is lost, so warnings and
    errors — the crash context — must not wait.  An eagerly-shipped
    record is *not* buffered, otherwise a later drain would replay it a
    second time.
    """

    def __init__(self, rank: int, capacity: int = 1000) -> None:
        super().__init__(level=logging.DEBUG)
        self.rank = int(rank)
        self.epoch = 0
        self.records: deque = deque(maxlen=int(capacity))
        self.eager_forward = None  # Optional[Callable[[WorkerLogRecord], None]]

    def emit(self, record: logging.LogRecord) -> None:
        try:
            message = record.getMessage()
        except Exception:  # pragma: no cover - malformed log call
            message = str(record.msg)
        flat = (record.levelno, record.name, message, self.rank, self.epoch, record.created)
        if self.eager_forward is not None and record.levelno >= EAGER_FORWARD_LEVEL:
            try:
                self.eager_forward(flat)
                return
            except Exception:  # pragma: no cover - queue torn down mid-send
                pass  # fall back to buffering
        self.records.append(flat)

    def drain(self) -> List[WorkerLogRecord]:
        records = list(self.records)
        self.records.clear()
        return records


_WORKER_BUFFER: Optional[WorkerLogBuffer] = None


def install_worker_log_buffer(rank: int, *, epoch: int = 0) -> WorkerLogBuffer:
    """Attach the per-process worker buffer (idempotent per process)."""
    global _WORKER_BUFFER
    if _WORKER_BUFFER is not None:
        uninstall_worker_log_buffer()
    handler = WorkerLogBuffer(rank)
    handler.epoch = int(epoch)
    root = logging.getLogger(ROOT_LOGGER)
    # capture everything the library emits; the coordinator's hierarchy
    # applies the user's level/handler configuration on replay
    root.setLevel(logging.DEBUG)
    root.addHandler(handler)
    _WORKER_BUFFER = handler
    return handler


def uninstall_worker_log_buffer() -> None:
    global _WORKER_BUFFER
    if _WORKER_BUFFER is not None:
        logging.getLogger(ROOT_LOGGER).removeHandler(_WORKER_BUFFER)
        _WORKER_BUFFER = None


def set_worker_log_epoch(epoch: int) -> None:
    """Stamp subsequent worker records with the communicator epoch."""
    if _WORKER_BUFFER is not None:
        _WORKER_BUFFER.epoch = int(epoch)


def set_worker_eager_forwarder(forward) -> None:
    """Register (or clear, with ``None``) the eager ≥WARNING shipper."""
    if _WORKER_BUFFER is not None:
        _WORKER_BUFFER.eager_forward = forward


def drain_worker_log_records() -> List[WorkerLogRecord]:
    """Return and clear this process's buffered records ([] when none)."""
    if _WORKER_BUFFER is None:
        return []
    return _WORKER_BUFFER.drain()


def replay_worker_records(records: List[WorkerLogRecord]) -> int:
    """Re-emit drained worker records through the coordinator's hierarchy.

    Returns the number of records replayed.  Each record goes to its
    original logger name so per-subsystem level filtering keeps working,
    prefixed with the producing worker's rank and epoch.
    """
    for levelno, name, message, rank, epoch, _created in records:
        logger = logging.getLogger(name)
        if logger.isEnabledFor(levelno):
            logger.log(levelno, "[worker r%d e%d] %s", rank, epoch, message)
    return len(records)

"""Per-phase/per-PE skew report over an exported Chrome trace.

``python -m repro.obs.report trace.json`` prints, for every algorithm
phase (the Figure 6 decomposition: prepare/insert/expire/select/
threshold/gather/overlap), the time each PE spent in spans of that
phase, plus the cross-PE mean/max and the *skew* ratio ``max / mean`` —
1.0 means perfectly balanced PEs, larger means a straggler.  This is the
per-PE dimension the aggregate :class:`~repro.runtime.metrics.RunMetrics`
ledger averages away.

The module doubles as the library API used by the obs tests and the
``bench_obs`` gate: :func:`phase_track_times` and :func:`skew_table`
work on any loaded trace-event dict.

``python -m repro.obs.report --bench-history BENCH_obs_history.json``
renders the other report: the trend table over a top-level benchmark
history file (appended to by ``benchmarks/harness.write_bench_json`` on
every gated run), with each numeric metric annotated with its ratio to
the previous record — the quick answer to "did this commit regress the
benchmark".
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

from repro.obs.export import validate_chrome_trace
from repro.runtime.metrics import PHASES

__all__ = [
    "phase_track_times",
    "skew_table",
    "render_report",
    "render_bench_history",
    "main",
]


def _track_names(events: List[dict]) -> Dict[int, str]:
    """pid → track name from the trace's process_name metadata records."""
    names: Dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[event["pid"]] = str(event.get("args", {}).get("name", event["pid"]))
    return names


def phase_track_times(trace: dict) -> Dict[str, Dict[str, float]]:
    """Seconds spent per (phase, track) over a trace-event dict.

    A complete event contributes to phase ``p`` when its name is ``p``
    (coordinator phase spans, per-PE kernel spans share the phase
    vocabulary) — other spans (commands, checkpoints) are ignored.
    """
    events = validate_chrome_trace(trace)
    names = _track_names(events)
    out: Dict[str, Dict[str, float]] = {}
    for event in events:
        if event.get("ph") != "X" or event.get("name") not in PHASES:
            continue
        track = names.get(event["pid"], str(event["pid"]))
        per_track = out.setdefault(event["name"], {})
        per_track[track] = per_track.get(track, 0.0) + float(event.get("dur", 0.0)) / 1e6
    return out


def skew_table(trace: dict) -> List[Tuple[str, Dict[str, float], float, float, float]]:
    """Rows ``(phase, per_track, mean, max, skew)`` in canonical phase order.

    Only PE tracks enter the skew statistics — the coordinator track
    aggregates all PEs' communication and would double-count.
    """
    per_phase = phase_track_times(trace)
    rows = []
    for phase in PHASES:
        per_track = per_phase.get(phase)
        if not per_track:
            continue
        pe_values = [t for track, t in per_track.items() if track.startswith("pe")]
        values = pe_values if pe_values else list(per_track.values())
        mean = sum(values) / len(values)
        peak = max(values)
        skew = peak / mean if mean > 0 else 1.0
        rows.append((phase, per_track, mean, peak, skew))
    return rows


def render_report(trace: dict, *, per_pe: bool = True) -> str:
    """The human-readable skew table for a loaded trace dict."""
    rows = skew_table(trace)
    if not rows:
        return "no phase spans found in trace\n"
    tracks = sorted(
        {track for _, per_track, *_ in rows for track in per_track},
        key=lambda name: (not name.startswith("pe"), name.replace("pe", "").zfill(8)),
    )
    pe_tracks = [t for t in tracks if t.startswith("pe")]
    lines = []
    header = ["phase".ljust(10)]
    if per_pe and len(pe_tracks) <= 16:
        header += [t.rjust(10) for t in pe_tracks]
    header += [s.rjust(10) for s in ("mean_s", "max_s", "skew")]
    lines.append("  ".join(header))
    lines.append("-" * len(lines[0]))
    for phase, per_track, mean, peak, skew in rows:
        row = [phase.ljust(10)]
        if per_pe and len(pe_tracks) <= 16:
            row += [f"{per_track.get(t, 0.0):10.4f}" for t in pe_tracks]
        row += [f"{mean:10.4f}", f"{peak:10.4f}", f"{skew:10.2f}"]
        lines.append("  ".join(row))
    recoveries = sum(
        1 for e in trace["traceEvents"] if e.get("ph") == "i" and e.get("name") == "recovery"
    )
    lines.append("")
    lines.append(
        f"tracks: {len(pe_tracks)} PE(s) + coordinator | "
        f"phase spans over {len(rows)} phase(s) | recovery markers: {recoveries}"
    )
    return "\n".join(lines) + "\n"


def _numeric_metrics(record: dict) -> Dict[str, float]:
    """The record's top-level numeric scalars (``meta`` and bools excluded)."""
    return {
        key: float(value)
        for key, value in record.items()
        if key != "meta" and isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def render_bench_history(history: dict, *, limit: int = 10) -> str:
    """The trend table over a ``BENCH_*_history.json`` benchmark history.

    One row per record (newest last), one column per numeric metric;
    every value after the first row carries its ratio to the previous
    record's value (``×1.06`` = 6% higher than the run before), so a
    perf regression is visible without diffing JSON by hand.
    """
    records = history.get("records") or []
    if not records:
        return "no records in benchmark history\n"
    shown = records[-limit:]
    metrics = sorted({key for record in shown for key in _numeric_metrics(record)})
    if not metrics:
        return "no numeric metrics in benchmark history records\n"
    dropped_metrics = metrics[6:]
    metrics = metrics[:6]

    width = max(16, max(len(m) for m in metrics) + 2)
    lines = []
    header = ["timestamp".ljust(20), "revision".ljust(8)]
    header += [m.rjust(width) for m in metrics]
    lines.append("  ".join(header))
    lines.append("-" * len(lines[0]))
    previous: Dict[str, float] = {}
    for record in shown:
        meta = record.get("meta", {})
        stamp = str(meta.get("timestamp_utc", "?"))[:19]
        revision = str(meta.get("git_revision", "?"))[:7]
        values = _numeric_metrics(record)
        row = [stamp.ljust(20), revision.ljust(8)]
        for metric in metrics:
            if metric not in values:
                row.append("-".rjust(width))
                continue
            value = values[metric]
            cell = f"{value:.4g}"
            prev = previous.get(metric)
            if prev:
                cell += f" ×{value / prev:.2f}"
            row.append(cell.rjust(width))
        previous.update(values)
        lines.append("  ".join(row))
    lines.append("")
    summary = (
        f"bench: {history.get('bench', '?')} | {len(records)} record(s)"
        + (f", showing last {len(shown)}" if len(shown) < len(records) else "")
        + " | ×N.NN = ratio vs previous record"
    )
    if dropped_metrics:
        summary += f" | columns omitted: {', '.join(dropped_metrics)}"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Print the per-phase/per-PE skew table of an exported trace, "
        "or the trend table of a benchmark history file.",
    )
    parser.add_argument(
        "trace", type=Path, nargs="?", help="Chrome trace-event JSON file"
    )
    parser.add_argument(
        "--no-per-pe",
        action="store_true",
        help="suppress the per-PE columns (summary statistics only)",
    )
    parser.add_argument(
        "--bench-history",
        type=Path,
        metavar="FILE",
        help="render the trend table of a top-level BENCH_*_history.json file "
        "instead of a trace report",
    )
    parser.add_argument(
        "--last",
        type=int,
        default=10,
        metavar="N",
        help="records shown by --bench-history (default: 10)",
    )
    args = parser.parse_args(argv)
    if args.bench_history is not None:
        try:
            history = json.loads(args.bench_history.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot load {args.bench_history}: {exc}", file=sys.stderr)
            return 2
        sys.stdout.write(render_bench_history(history, limit=max(1, args.last)))
        return 0
    if args.trace is None:
        parser.error("a trace file or --bench-history FILE is required")
    try:
        trace = json.loads(args.trace.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load {args.trace}: {exc}", file=sys.stderr)
        return 2
    try:
        sys.stdout.write(render_report(trace, per_pe=not args.no_per_pe))
    except ValueError as exc:
        print(f"error: invalid trace: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CLI smoke test
    raise SystemExit(main())

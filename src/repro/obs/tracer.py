"""Span/instant/counter tracers with a zero-overhead Null default.

Events are plain tuples so they pickle cheaply across the process
boundary and serialise to JSON without custom encoders::

    (ph, name, cat, ts, dur, args)

``ph`` is the Chrome trace-event phase code — ``"X"`` (complete span),
``"i"`` (instant) or ``"C"`` (counter) — ``ts`` is a local
:func:`time.perf_counter` reading in seconds, ``dur`` the span duration
(0.0 for instants/counters) and ``args`` a small dict of JSON-safe
values or ``None``.

Two tracer implementations exist:

* :class:`NullTracer` — every method is a no-op and :meth:`span` returns
  a shared do-nothing context manager.  This is the default wired into
  every instrumentation point, so a run without tracing pays only the
  cost of a method call that immediately returns (the ``bench_obs``
  gate keeps that below 2% of round time).
* :class:`MemoryTracer` — appends events to an in-process list.  Buffer
  appends are plain ``list.append`` calls, which the GIL makes safe
  against the pipelined drivers' worker-side prepare threads.

One *process tracer* global exists per process
(:func:`process_tracer` / :func:`set_process_tracer`): it is how code
without access to a per-PE state dict — the worker command loop, the
mailbox, the shared-memory rings — finds the active tracer.  Worker
processes adopt their per-rank tracer as the process tracer when the
collector installs it; the coordinator adopts the collector's own
tracer.  The default is :data:`NULL_TRACER`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "MemoryTracer",
    "NULL_TRACER",
    "process_tracer",
    "set_process_tracer",
]

#: event tuple: (ph, name, cat, ts, dur, args)
TraceEvent = Tuple[str, str, Optional[str], float, float, Optional[dict]]


class _NullSpan:
    """Shared do-nothing context manager returned by :meth:`NullTracer.span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """The tracer protocol every instrumentation point talks to.

    ``span(name, cat=None, **args)`` returns a context manager timing a
    region; ``instant`` marks a point in time; ``counter`` samples a
    numeric series.  ``drain()`` returns and clears any buffered events.
    ``enabled`` lets rare call sites skip building expensive arguments;
    hot paths call the methods unconditionally and rely on the Null
    implementation being free.
    """

    enabled = False
    track = ""
    tags: Dict[str, object] = {}

    def span(self, name: str, cat: Optional[str] = None, **args):
        raise NotImplementedError

    def instant(self, name: str, cat: Optional[str] = None, **args) -> None:
        raise NotImplementedError

    def counter(self, name: str, value: float, cat: Optional[str] = None, **args) -> None:
        raise NotImplementedError

    def drain(self) -> List[TraceEvent]:
        raise NotImplementedError


class NullTracer(Tracer):
    """The zero-overhead default tracer: records nothing.

    Mirrors the Null-stub convention of the communicator layer — every
    call site can invoke the tracer unconditionally and a run without
    tracing executes only trivially cheap no-ops.  ``NullTracer`` never
    touches a random generator, so samples are byte-identical with
    tracing on, off, or Null (test-enforced).
    """

    enabled = False
    track = ""
    tags: Dict[str, object] = {}

    def span(self, name: str, cat: Optional[str] = None, **args) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, cat: Optional[str] = None, **args) -> None:
        return None

    def counter(self, name: str, value: float, cat: Optional[str] = None, **args) -> None:
        return None

    def drain(self) -> List[TraceEvent]:
        return []

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "NullTracer()"


#: the process-wide shared Null tracer instance
NULL_TRACER = NullTracer()


class _Span:
    """Context manager recording one complete ("X") event on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start")

    def __init__(self, tracer: "MemoryTracer", name: str, cat: Optional[str], args) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        self._tracer.events.append(
            ("X", self._name, self._cat, self._start, end - self._start, self._args)
        )
        return False


class MemoryTracer(Tracer):
    """In-process buffering tracer.

    Parameters
    ----------
    track:
        Display name of the timeline this tracer's events belong to
        (``"coordinator"`` or ``"pe3"``).  The exporter renders one track
        per tracer.
    tags:
        Static key/value tags merged into every event's args at export
        time (rank, ``kernel_tier``); kept on the tracer instead of per
        event so the hot path does not copy them.
    """

    __slots__ = ("track", "tags", "events")

    enabled = True

    def __init__(self, track: str = "main", tags: Optional[Dict[str, object]] = None) -> None:
        self.track = track
        self.tags: Dict[str, object] = dict(tags) if tags else {}
        self.events: List[TraceEvent] = []

    def span(self, name: str, cat: Optional[str] = None, **args) -> _Span:
        return _Span(self, name, cat, args or None)

    def instant(self, name: str, cat: Optional[str] = None, **args) -> None:
        self.events.append(("i", name, cat, time.perf_counter(), 0.0, args or None))

    def counter(self, name: str, value: float, cat: Optional[str] = None, **args) -> None:
        args["value"] = float(value)
        self.events.append(("C", name, cat, time.perf_counter(), 0.0, args))

    def drain(self) -> List[TraceEvent]:
        """Return and clear the buffered events (atomic swap)."""
        events, self.events = self.events, []
        return events

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"MemoryTracer(track={self.track!r}, events={len(self.events)})"


_PROCESS_TRACER: Tracer = NULL_TRACER


def process_tracer():
    """The process-wide tracer (``NULL_TRACER`` unless collection installed one)."""
    return _PROCESS_TRACER


def set_process_tracer(tracer) -> object:
    """Install ``tracer`` as the process-wide tracer; returns the previous one."""
    global _PROCESS_TRACER
    previous = _PROCESS_TRACER
    _PROCESS_TRACER = tracer if tracer is not None else NULL_TRACER
    return previous

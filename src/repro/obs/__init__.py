"""Observability layer: tracing, metrics, and structured logging.

The paper's evaluation is a measurement story — Figures 3–6 decompose
wall-clock time into per-phase, per-PE components — and the aggregate
:class:`~repro.runtime.metrics.RunMetrics` ledger averages exactly the
per-PE skew away.  This package restores the lost dimension:

* :mod:`repro.obs.tracer` — span/instant/counter events behind a
  :class:`Tracer` protocol with a zero-overhead :class:`NullTracer`
  default (the same Null-stub convention the communicator layer uses),
* :mod:`repro.obs.collect` — cross-process collection: worker-buffered
  events shipped to the coordinator over the existing reply path at
  round boundaries, with per-worker monotonic-clock offset calibration,
* :mod:`repro.obs.export` — Chrome trace-event JSON (loadable in
  Perfetto; one track per PE plus the coordinator),
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and histograms with Prometheus-style text exposition,
* :mod:`repro.obs.report` — ``python -m repro.obs.report trace.json``
  prints the per-phase/per-PE skew table mirroring Figure 6,
* :mod:`repro.obs.log` — the ``repro`` stdlib-logging hierarchy and the
  worker→coordinator log-record forwarding used by the multiprocess
  backend,
* :mod:`repro.obs.health` — live health monitoring: worker heartbeats,
  a stall/straggler watchdog with adaptive EWMA deadlines and
  ``ok|straggler|stalled|dead`` per-rank classification, and stall
  policies that escalate into the checkpoint-recovery machinery,
* :mod:`repro.obs.serve` — the stdlib HTTP exporter serving
  ``GET /metrics`` (Prometheus text) and ``GET /health`` (per-rank
  JSON) from a daemon thread.

Tracing is off by default everywhere: every instrumentation point talks
to a :data:`NULL_TRACER` whose methods are no-ops, and the byte-identity
guarantees of the samplers are unaffected because no tracer ever touches
a random generator (the equivalence tests enforce this).
"""

from repro.obs.collect import TraceCollector, resolve_trace
from repro.obs.export import (
    chrome_trace_dict,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.health import (
    BeatChannel,
    HealthConfig,
    HealthMonitor,
    Heartbeat,
    StallError,
    resolve_health,
)
from repro.obs.log import get_logger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.serve import HealthServer, resolve_serve
from repro.obs.tracer import (
    NULL_TRACER,
    MemoryTracer,
    NullTracer,
    Tracer,
    process_tracer,
    set_process_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "MemoryTracer",
    "NULL_TRACER",
    "process_tracer",
    "set_process_tracer",
    "TraceCollector",
    "resolve_trace",
    "chrome_trace_dict",
    "write_chrome_trace",
    "validate_chrome_trace",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_logger",
    "Heartbeat",
    "BeatChannel",
    "HealthConfig",
    "HealthMonitor",
    "StallError",
    "resolve_health",
    "HealthServer",
    "resolve_serve",
]

"""Live HTTP exporter: ``GET /metrics`` (Prometheus) and ``GET /health``.

A stdlib-only (:mod:`http.server`) daemon thread that makes a running
sampler scrapeable, the way any production stream processor is:

* ``GET /metrics`` — the run's :class:`~repro.obs.metrics.MetricsRegistry`
  in Prometheus text exposition format,
* ``GET /health`` — the :class:`~repro.obs.health.HealthMonitor`'s live
  per-rank JSON view; HTTP 200 while every rank is ``ok`` or merely a
  ``straggler``, 503 once any rank is ``stalled`` or ``dead`` (so a load
  balancer or readiness probe needs no JSON parsing).

Drivers start one via ``serve_metrics=("127.0.0.1", 0)``; standalone use
is a context manager::

    with HealthServer(registry=reg, monitor=mon, port=0) as server:
        print(server.url("/metrics"))

Port 0 binds an ephemeral port; :attr:`HealthServer.address` reports the
actual one.  The server binds to loopback by default — exposing it wider
is an explicit choice.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple, Union

from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry

__all__ = ["HealthServer", "resolve_serve"]

_logger = get_logger("obs.serve")

#: content type of the Prometheus text exposition format
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class HealthServer:
    """Threaded HTTP endpoint over a metrics registry and health monitor."""

    def __init__(
        self,
        *,
        registry: Optional[MetricsRegistry] = None,
        monitor=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if registry is None and monitor is not None:
            registry = monitor.registry
        self.registry = registry if registry is not None else MetricsRegistry()
        self.monitor = monitor
        self._requested = (host, int(port))
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "HealthServer":
        if self._server is not None:
            return self
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            # keep scrapes out of stderr; route rare errors to our logger
            def log_message(self, format, *args):  # noqa: A002 - stdlib signature
                pass

            def log_error(self, format, *args):  # noqa: A002 - stdlib signature
                _logger.debug("http: " + format, *args)

            def do_GET(self):  # noqa: N802 - stdlib signature
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = exporter.registry.exposition().encode("utf-8")
                    self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
                elif path in ("/health", "/healthz"):
                    status, payload = exporter._health_payload()
                    body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
                    self._reply(status, "application/json; charset=utf-8", body)
                elif path == "/":
                    body = b'{"endpoints": ["/metrics", "/health"]}'
                    self._reply(200, "application/json; charset=utf-8", body)
                else:
                    self._reply(404, "text/plain; charset=utf-8", b"not found\n")

            def _reply(self, status: int, content_type: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._server = ThreadingHTTPServer(self._requested, _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-health-server",
            daemon=True,
        )
        self._thread.start()
        _logger.info("serving /metrics and /health on http://%s:%d", *self.address)
        return self

    def close(self) -> None:
        """Stop serving.  Idempotent."""
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "HealthServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ---------------------------------------------------
    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — the real port even when 0 was asked."""
        if self._server is not None:
            return self._server.server_address[0], self._server.server_address[1]
        return self._requested

    def url(self, path: str = "/") -> str:
        host, port = self.address
        if not path.startswith("/"):
            path = "/" + path
        return f"http://{host}:{port}{path}"

    def _health_payload(self) -> Tuple[int, dict]:
        if self.monitor is None:
            return 200, {"status": "unknown", "detail": "no health monitor attached"}
        payload = self.monitor.status()
        status = 503 if payload.get("status") == "unhealthy" else 200
        return status, payload


def resolve_serve(
    serve_metrics: Union[None, bool, Tuple[str, int], HealthServer],
    *,
    registry: Optional[MetricsRegistry] = None,
    monitor=None,
) -> Optional[HealthServer]:
    """Resolve a driver's ``serve_metrics=`` argument and start the server.

    ``None``/``False`` → no server; ``True`` → loopback on an ephemeral
    port; an ``(host, port)`` tuple → that address; a pre-built
    :class:`HealthServer` is adopted (started if needed, wired to the
    run's registry/monitor if it has none).
    """
    if serve_metrics is None or serve_metrics is False:
        return None
    if isinstance(serve_metrics, HealthServer):
        server = serve_metrics
        if monitor is not None and server.monitor is None:
            server.monitor = monitor
            if registry is not None:
                server.registry = registry
        return server.start()
    if serve_metrics is True:
        host, port = "127.0.0.1", 0
    else:
        try:
            host, port = serve_metrics
        except (TypeError, ValueError):
            raise TypeError(
                "serve_metrics must be None, True, a (host, port) tuple or a "
                f"HealthServer, got {serve_metrics!r}"
            ) from None
    return HealthServer(registry=registry, monitor=monitor, host=host, port=int(port)).start()

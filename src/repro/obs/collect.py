"""Cross-process trace collection and clock alignment.

The coordinator owns a :class:`TraceCollector`; each traced PE state gets
a per-rank :class:`~repro.obs.tracer.MemoryTracer` installed by a kernel
dispatched over the communicator (so the same code paths work whether
the PE lives inline under the simulated backend or in a worker process
under the multiprocess backend).  Workers buffer events locally; the
drivers drain them over the existing reply path at every round boundary
(:meth:`TraceCollector.record_round`) and at teardown
(:meth:`TraceCollector.finish`).

Worker clocks are :func:`time.perf_counter` readings, which different
processes may base on different origins.  :meth:`TraceCollector.calibrate`
estimates each worker's offset against the coordinator clock with the
classic symmetric-probe scheme: the coordinator reads its clock before
(``t0``) and after (``t1``) a round trip that returns the worker's clock
``tw``, giving ``offset = tw - (t0 + t1) / 2``; the probe with the
smallest round-trip time wins.  Collected worker timestamps have the
offset subtracted, so every span lands on the coordinator's timeline —
the span-monotonicity tests and the Perfetto view both rely on this.

Recovery semantics: when the driver recovers from worker deaths and
replays rounds from a checkpoint, :meth:`TraceCollector.on_recovery`
discards the partially-recorded rounds (both the survivors' buffered
events and the already-collected events of rounds that will be replayed)
and emits a ``recovery`` marker carrying the new epoch — so the final
trace contains every round exactly once plus one marker per recovery.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.export import chrome_trace_dict, write_chrome_trace
from repro.obs.log import drain_worker_log_records, replay_worker_records
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, MemoryTracer, set_process_tracer

__all__ = [
    "TraceCollector",
    "resolve_trace",
    "install_tracer_kernel",
    "uninstall_tracer_kernel",
    "drain_trace_kernel",
    "clock_probe_kernel",
]

#: probes per rank during clock calibration; the min-RTT sample wins
_CALIBRATION_PROBES = 3


# ---------------------------------------------------------------------------
# kernels (module-level so the multiprocess backend can pickle them)
# ---------------------------------------------------------------------------
def install_tracer_kernel(state, rank: int, coordinator_pid: int) -> bool:
    """Install a per-rank buffering tracer into ``state``.

    In a worker process the tracer is also adopted as the process-wide
    tracer, so the worker command loop, mailbox and shared-memory ring
    instrumentation share the rank's buffer.  Under the simulated
    backend (same pid as the coordinator) the process-wide tracer is
    left alone — it belongs to the coordinator timeline there.
    """
    tier = state.get("kernel_tier", "") if isinstance(state, dict) else ""
    tracer = MemoryTracer(track=f"pe{rank}", tags={"rank": int(rank), "kernel_tier": tier})
    if isinstance(state, dict):
        state["tracer"] = tracer
    if os.getpid() != coordinator_pid:
        set_process_tracer(tracer)
    return True


def uninstall_tracer_kernel(state, coordinator_pid: int) -> bool:
    """Put the Null tracer back (teardown of a traced run)."""
    if isinstance(state, dict):
        state["tracer"] = NULL_TRACER
    if os.getpid() != coordinator_pid:
        set_process_tracer(NULL_TRACER)
    return True


def drain_trace_kernel(state):
    """Return and clear this PE's buffered events and log records."""
    tracer = state.get("tracer") if isinstance(state, dict) else None
    if tracer is None or not getattr(tracer, "enabled", False):
        return ("", {}, [], drain_worker_log_records())
    return (tracer.track, dict(tracer.tags), tracer.drain(), drain_worker_log_records())


def clock_probe_kernel(state) -> float:
    """The PE-local monotonic clock reading (calibration probe)."""
    return time.perf_counter()


# ---------------------------------------------------------------------------
# coordinator-side collector
# ---------------------------------------------------------------------------
class TraceCollector:
    """Coordinator-side owner of a traced run.

    Collects events from its own coordinator tracer and from the per-PE
    tracers behind a communicator, aligns worker timestamps onto the
    coordinator clock, feeds the run's :class:`MetricsRegistry`, and
    exports Chrome trace JSON.

    Drivers accept ``trace=`` (``True`` or a collector instance) and call
    :meth:`attach` once, :meth:`record_round` per round and
    :meth:`finish` at teardown; nothing here is called on untraced runs.
    """

    def __init__(self) -> None:
        #: the coordinator timeline; drivers and the communicator emit here
        self.tracer = MemoryTracer(track="coordinator")
        #: live instruments fed from the per-round metrics
        self.registry = MetricsRegistry()
        #: per-rank clock offsets (worker clock minus coordinator clock)
        self.clock_offsets: Dict[int, float] = {}
        self._events: List[Tuple] = []  # (track, ph, name, cat, ts, dur, args)
        self._comm = None
        self._handle = None
        self._previous_process_tracer = None
        self._rounds_recorded = 0
        self._ledger_words = 0.0
        self._finished = False

    # -- lifecycle -------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self._comm is not None

    def attach(self, comm, handle) -> "TraceCollector":
        """Bind to a communicator + PE-state handle and start collecting.

        Installs the per-rank tracers, points the communicator's tracer
        attribute at the coordinator timeline, adopts the coordinator
        timeline as this process's tracer (shared-memory ring and sweep
        instrumentation), and calibrates the worker clocks.
        """
        self._comm = comm
        self._handle = handle
        self._finished = False
        comm.tracer = self.tracer
        self._previous_process_tracer = set_process_tracer(self.tracer)
        self._ledger_words = float(getattr(comm.ledger, "total_words", 0.0))
        self._install()
        self.calibrate()
        self.tracer.instant("trace.attach", cat="obs", p=comm.p)
        return self

    def _install(self) -> None:
        comm, handle = self._comm, self._handle
        pid = os.getpid()
        comm.run_per_pe(
            handle,
            install_tracer_kernel,
            [(rank, pid) for rank in range(comm.p)],
        )

    def calibrate(self) -> Dict[int, float]:
        """Estimate each rank's clock offset against the coordinator."""
        comm, handle = self._comm, self._handle
        for rank in range(comm.p):
            best_rtt = float("inf")
            best_offset = 0.0
            for _ in range(_CALIBRATION_PROBES):
                t0 = time.perf_counter()
                remote = comm.run_on_pe(handle, rank, clock_probe_kernel)
                t1 = time.perf_counter()
                rtt = t1 - t0
                if rtt < best_rtt:
                    best_rtt = rtt
                    best_offset = float(remote) - (t0 + t1) / 2.0
            self.clock_offsets[rank] = best_offset
        return dict(self.clock_offsets)

    # -- collection ------------------------------------------------------
    def _append(self, track, events, offset, extra_tags) -> None:
        for ph, name, cat, ts, dur, args in events:
            merged = dict(extra_tags)
            if args:
                merged.update(args)
            self._events.append((track, ph, name, cat, ts - offset, dur, merged or None))

    def _drain_coordinator(self, tag_round: Optional[int]) -> None:
        tags = {} if tag_round is None else {"round": tag_round}
        self._append("coordinator", self.tracer.drain(), 0.0, tags)

    def drain(self, tag_round: Optional[int] = None, *, discard: bool = False) -> None:
        """Ship worker buffers to the coordinator (one reply per PE).

        ``tag_round`` stamps every collected event's args with the round
        it was shipped at; ``discard=True`` clears the buffers without
        keeping the events (recovery rollback).  Worker log records are
        always replayed into the coordinator's logging hierarchy, even
        when the trace events are discarded.
        """
        comm, handle = self._comm, self._handle
        epoch = int(getattr(comm, "epoch", 0))
        results = comm.run_per_pe(handle, drain_trace_kernel)
        log_records = []
        for rank, (track, tags, events, logs) in enumerate(results):
            log_records.extend(logs)
            if discard or not events:
                continue
            merged = dict(tags)
            merged["epoch"] = epoch
            if tag_round is not None:
                merged["round"] = tag_round
            self._append(track or f"pe{rank}", events, self.clock_offsets.get(rank, 0.0), merged)
        replay_worker_records(log_records)
        if not discard:
            self._drain_coordinator(tag_round)

    # -- driver hooks ----------------------------------------------------
    def record_round(self, metrics=None, *, wall_time: Optional[float] = None) -> None:
        """Round-boundary hook: drain buffers and update the registry."""
        round_index = (
            int(metrics.round_index) if metrics is not None else self._rounds_recorded
        )
        self.drain(tag_round=round_index)
        self._rounds_recorded += 1
        registry = self.registry
        if wall_time is not None:
            registry.histogram(
                "repro_round_seconds", "measured wall-clock time per round"
            ).observe(wall_time)
        comm = self._comm
        if comm is not None:
            words = float(getattr(comm.ledger, "total_words", 0.0))
            delta = max(words - self._ledger_words, 0.0)
            self._ledger_words = words
            registry.counter(
                "repro_payload_bytes_total",
                "communication volume (8-byte words from the cost ledger)",
            ).inc(delta * 8.0)
        if metrics is None:
            return
        registry.counter("repro_rounds_total", "processed mini-batch rounds").inc()
        registry.counter("repro_items_total", "stream items processed").inc(
            metrics.batch_items
        )
        registry.counter(
            "repro_insertions_total", "candidate insertions into local reservoirs"
        ).inc(metrics.total_insertions)
        if metrics.evicted_items:
            registry.counter(
                "repro_evictions_total", "window candidates expired out of the buffers"
            ).inc(metrics.evicted_items)
        if metrics.stale_extra_candidates:
            registry.counter(
                "repro_stale_candidates_total",
                "relaxed-pipeline candidates re-pruned at ingest",
            ).inc(metrics.stale_extra_candidates)
        if metrics.selection_ran:
            registry.counter(
                "repro_selections_total", "rounds that ran the distributed selection"
            ).inc()
        if metrics.selection_skipped:
            registry.counter(
                "repro_selection_skips_total",
                "rounds whose re-selection the amortised boundary check skipped",
            ).inc()
        registry.gauge("repro_sample_size", "current distributed sample size").set(
            metrics.sample_size
        )
        if metrics.threshold is not None:
            registry.gauge("repro_threshold", "current global insertion threshold").set(
                metrics.threshold
            )

    def on_autotune(self, old_size: int, new_size: int) -> None:
        """Autotune decision hook: marker event plus registry update."""
        self.tracer.instant(
            "autotune.resize", cat="driver", old_size=int(old_size), new_size=int(new_size)
        )
        self.registry.counter(
            "repro_autotune_adjustments_total", "autotuner batch-size changes"
        ).inc()
        self.registry.gauge("repro_batch_size", "current per-PE mini-batch size").set(
            new_size
        )

    def on_recovery(self, *, epoch: int, dead_ranks: Sequence[int], resume_round: int) -> None:
        """Worker-death recovery hook (after the driver restored state).

        Rolls the collected events back to the checkpoint the run resumed
        from — the replayed rounds will be re-collected — reinstalls the
        per-rank tracers (respawned workers start with the Null tracer),
        recalibrates clocks, and emits the recovery/epoch-bump marker.
        """
        # keep the coordinator's own pre-recovery events (failed round,
        # restore spans) untagged, then throw away the survivors' partial
        # buffers — the replay will regenerate that work
        self._drain_coordinator(None)
        try:
            self.drain(discard=True)
        except Exception:  # pragma: no cover - recovery of the recovery
            pass
        self._events = [
            event
            for event in self._events
            if not (
                event[6] is not None
                and isinstance(event[6].get("round"), int)
                and event[6]["round"] >= resume_round
            )
        ]
        self._install()
        self.calibrate()
        self.tracer.instant(
            "recovery",
            cat="fault",
            epoch=int(epoch),
            dead_ranks=[int(r) for r in dead_ranks],
            resume_round=int(resume_round),
        )
        self.registry.counter(
            "repro_recoveries_total", "worker-death recoveries survived"
        ).inc()

    def finish(self) -> None:
        """Teardown hook: final drain and restore the Null defaults.

        Idempotent; safe to call when the communicator is already gone
        (the trace then simply keeps what was collected so far).
        """
        if self._finished:
            return
        self._finished = True
        if self._previous_process_tracer is not None:
            set_process_tracer(self._previous_process_tracer)
            self._previous_process_tracer = None
        if self._comm is None:
            return
        try:
            self.drain(tag_round=None)
            self._comm.run_per_pe(
                self._handle,
                uninstall_tracer_kernel,
                [(os.getpid(),) for _ in range(self._comm.p)],
            )
        except Exception:  # workers may already be shut down
            self._drain_coordinator(None)
        self._comm.tracer = NULL_TRACER

    # -- export ----------------------------------------------------------
    def events(self) -> List[Tuple]:
        """The collected events (aligned), sorted by timestamp."""
        pending = list(self._events)
        if self.tracer.events:
            # include coordinator events not yet drained so export works
            # mid-run; the buffer itself stays intact
            pending.extend(
                ("coordinator", ph, name, cat, ts, dur, args)
                for ph, name, cat, ts, dur, args in self.tracer.events
            )
        return sorted(pending, key=lambda event: event[4])

    def tracks(self) -> List[str]:
        return sorted({event[0] for event in self.events()})

    def chrome_trace(self) -> dict:
        """The Chrome trace-event JSON object for everything collected."""
        metadata = {
            "clock_offsets": {str(r): o for r, o in self.clock_offsets.items()},
            "rounds_recorded": self._rounds_recorded,
        }
        return chrome_trace_dict(self.events(), metadata=metadata)

    def export(self, path):
        """Write the Chrome trace JSON to ``path``."""
        metadata = {
            "clock_offsets": {str(r): o for r, o in self.clock_offsets.items()},
            "rounds_recorded": self._rounds_recorded,
        }
        return write_chrome_trace(path, self.events(), metadata=metadata)


def resolve_trace(trace) -> Optional[TraceCollector]:
    """Resolve a driver's ``trace=`` argument.

    ``None``/``False`` → no tracing; ``True`` → a fresh collector; a
    :class:`TraceCollector` instance passes through (sharing one
    collector across a run's phases).  Shared by every driver so the
    accepted spellings cannot drift apart.
    """
    if trace is None or trace is False:
        return None
    if trace is True:
        return TraceCollector()
    if isinstance(trace, TraceCollector):
        return trace
    raise TypeError(
        f"trace must be None, a bool, or a TraceCollector, got {type(trace).__name__}"
    )

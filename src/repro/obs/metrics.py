"""A small live metrics registry with Prometheus-style text exposition.

The future multi-tenant sampling service needs scrapeable operational
metrics; the benchmarks need the same numbers without a server.  The
registry keeps both happy: instruments are cheap in-process objects and
:meth:`MetricsRegistry.exposition` renders the standard text format
(``# HELP`` / ``# TYPE`` headers, cumulative histogram buckets) that any
Prometheus scraper — or a test's string assertion — can consume.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing total (payload bytes,
  stale candidates, evictions, recoveries, autotune decisions),
* :class:`Gauge` — a value that goes both ways (current batch size,
  threshold, sample size),
* :class:`Histogram` — cumulative-bucket distribution (round latency).

Instruments are created on first use (``registry.counter(name)``), and
re-requesting a name returns the same instrument, so producer call sites
need no registration ceremony.

Thread safety: the HTTP exporter (:mod:`repro.obs.serve`) scrapes from a
daemon thread while the driver and the health monitor write.  Every
instrument guards its mutations with a lock, and instruments created
through a :class:`MetricsRegistry` share the registry's single re-entrant
lock — so :meth:`MetricsRegistry.exposition` and
:meth:`MetricsRegistry.as_dict` are consistent snapshots: no counter
advances between the first and the last rendered line.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: default histogram buckets (seconds): round latencies from 100 µs to ~1 min
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r} (Prometheus name rules)")
    return name


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` payload per the Prometheus text format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class Counter:
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", *, lock: Optional[threading.RLock] = None) -> None:
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc({amount}))")
        with self._lock:
            self.value += float(amount)

    def sample_lines(self) -> List[str]:
        with self._lock:
            return [f"{self.name} {_format_value(self.value)}"]

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {"kind": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", *, lock: Optional[threading.RLock] = None) -> None:
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= float(amount)

    def sample_lines(self) -> List[str]:
        with self._lock:
            return [f"{self.name} {_format_value(self.value)}"]

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {"kind": self.kind, "value": self.value}


class Histogram:
    """Distribution instrument with Prometheus histogram semantics.

    Observations are stored *per bucket* (each lands in the first bound
    that fits); the cumulative ``le``-bucket counts of the exposition
    format are computed at render time.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        *,
        lock: Optional[threading.RLock] = None,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    break

    def _cumulative_counts(self) -> List[int]:
        running = 0
        out = []
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out

    def sample_lines(self) -> List[str]:
        with self._lock:
            lines = []
            for bound, count in zip(self.bounds, self._cumulative_counts()):
                lines.append(f'{self.name}_bucket{{le="{_format_value(bound)}"}} {count}')
            lines.append(f'{self.name}_bucket{{le="+Inf"}} {self.count}')
            lines.append(f"{self.name}_sum {_format_value(self.sum)}")
            lines.append(f"{self.name}_count {self.count}")
            return lines

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "kind": self.kind,
                "count": self.count,
                "sum": self.sum,
                "buckets": {
                    _format_value(b): c for b, c in zip(self.bounds, self._cumulative_counts())
                },
            }


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    A name is bound to one instrument kind for the registry's lifetime;
    requesting an existing name with a different kind raises.

    All instruments created through the registry share its single
    re-entrant lock, so a scrape (:meth:`exposition` / :meth:`as_dict`)
    observes one consistent point in time even while other threads write.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, help, lock=self._lock, **kwargs)
                self._instruments[name] = instrument
                return instrument
            if not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {instrument.kind}, "
                    f"requested {cls.kind}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        if buckets is None:
            return self._get_or_create(Histogram, name, help)
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str):
        """The instrument registered under ``name`` or ``None``."""
        with self._lock:
            return self._instruments.get(name)

    def exposition(self) -> str:
        """Prometheus text exposition of every registered instrument.

        Rendered under the registry lock (re-entrant, so the instruments'
        own locking nests) — the output is a consistent snapshot.
        """
        with self._lock:
            lines: List[str] = []
            for name in sorted(self._instruments):
                instrument = self._instruments[name]
                if instrument.help:
                    lines.append(f"# HELP {name} {_escape_help(instrument.help)}")
                lines.append(f"# TYPE {name} {instrument.kind}")
                lines.extend(instrument.sample_lines())
            return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe consistent snapshot of every instrument (benches, /health)."""
        with self._lock:
            return {name: inst.as_dict() for name, inst in sorted(self._instruments.items())}

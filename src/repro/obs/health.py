"""Live health monitoring: heartbeats and the stall/straggler watchdog.

PR 7's recovery machinery only notices *death* — a worker process whose
sentinel fires.  A worker that hangs (deadlock, runaway kernel, swapped
host) blocks the whole lock-step round forever, and a merely *slow*
worker silently stretches every collective.  This module adds the live
dimension:

* **Heartbeats** — every per-PE kernel phase emits lightweight beats
  (rank, epoch, round, phase, items, monotonic timestamp) through a
  :class:`BeatChannel` installed into the PE state by a kernel, exactly
  like the trace collector installs its tracers.  Under the multiprocess
  backend beats travel over a dedicated queue each worker inherits at
  spawn; under the simulated backend the inline kernels append to a
  coordinator-local sink — so the equivalence suites exercise the same
  emission path on both backends.
* **Watchdog** — the coordinator's :class:`HealthMonitor` daemon thread
  drains beats, maintains per-``(rank, phase)`` EWMAs of observed phase
  durations and inter-beat gaps, and classifies every rank live as
  ``ok | straggler | stalled | dead``.  Deadlines are adaptive:
  ``grace + factor × EWMA``, floored at ``min_deadline``.  The live
  straggler *skew* (the ``max/mean`` ratio of :mod:`repro.obs.report`,
  computed from the phase EWMAs instead of a post-hoc trace) feeds the
  :class:`~repro.obs.metrics.MetricsRegistry` the HTTP exporter serves.
* **Stall policy** — ``on_stall="warn"`` (default) logs and counts;
  ``"recover"`` and ``"raise"`` kill the stuck worker so the blocked
  collective unwinds as a :class:`~repro.network.process_comm.WorkerError`
  — which either escalates into the driver's existing checkpoint-replay
  recovery (byte-identical samples after a hang, not just after SIGKILL)
  or surfaces as a :class:`StallError`.

Heartbeats never touch any random generator, so samples are
byte-identical with monitoring on or off (test-enforced, like tracing).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.log import get_logger, replay_worker_records
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Heartbeat",
    "BeatChannel",
    "HealthConfig",
    "HealthMonitor",
    "StallError",
    "RANK_STATES",
    "resolve_health",
    "install_beat_kernel",
    "uninstall_beat_kernel",
    "register_worker_beat_queue",
    "set_worker_beat_epoch",
    "worker_beat_queue_registered",
    "worker_wait_beat",
    "create_local_sink",
    "drain_local_sink",
    "close_local_sink",
    "local_sink_send",
    "drain_beat_messages",
]

_logger = get_logger("obs.health")

#: live rank classifications, healthiest first
RANK_STATES = ("ok", "straggler", "stalled", "dead")


class StallError(RuntimeError):
    """A rank exceeded its stall deadline under ``on_stall="raise"``."""

    def __init__(self, rank: int, phase: Optional[str], silent_for: float) -> None:
        self.rank = int(rank)
        self.phase = phase
        self.silent_for = float(silent_for)
        where = f"in phase {phase!r}" if phase else "between phases"
        super().__init__(
            f"rank {rank} stalled {where}: no heartbeat for {silent_for:.2f}s "
            "(watchdog deadline exceeded)"
        )


@dataclass(frozen=True)
class Heartbeat:
    """One progress beat as the monitor sees it (coordinator side)."""

    rank: int
    epoch: int
    round: int
    phase: str
    kind: str  # "start" | "end"
    items: int
    duration: float  # phase duration in worker-clock seconds ("end" beats)
    sent_at: float  # worker-local monotonic timestamp
    received_at: float  # coordinator monotonic timestamp at drain


# ---------------------------------------------------------------------------
# beat transport: worker-global queue (process backend) and local sinks (sim)
# ---------------------------------------------------------------------------
#: (send_fn, rank, epoch) registered once per worker process at spawn
_WORKER_BEATS: Optional[list] = None

#: coordinator-local sinks keyed by monitor token (simulated backend)
_LOCAL_SINKS: Dict[int, deque] = {}
_LOCAL_SINKS_LOCK = threading.Lock()
_NEXT_SINK_TOKEN = [0]


def register_worker_beat_queue(queue, rank: int, epoch: int = 0) -> None:
    """Register this worker process's beat queue (called at worker spawn).

    Also wires the worker's :class:`~repro.obs.log.WorkerLogBuffer` to
    forward ≥WARNING records *eagerly* through the same queue, so crash
    context reaches the coordinator even if this process dies before the
    next drain.
    """
    global _WORKER_BEATS
    _WORKER_BEATS = [queue, int(rank), int(epoch)]

    def _eager(record) -> None:
        queue.put(("log", record))

    from repro.obs.log import set_worker_eager_forwarder

    set_worker_eager_forwarder(_eager)


def worker_beat_queue_registered() -> bool:
    return _WORKER_BEATS is not None


def set_worker_beat_epoch(epoch: int) -> None:
    """Stamp subsequent beats with the communicator epoch (after recovery)."""
    if _WORKER_BEATS is not None:
        _WORKER_BEATS[2] = int(epoch)


def _worker_send(message: tuple) -> None:
    if _WORKER_BEATS is not None:
        try:
            _WORKER_BEATS[0].put(message)
        except (OSError, ValueError):  # pragma: no cover - queue torn down
            pass


def _worker_epoch() -> int:
    return _WORKER_BEATS[2] if _WORKER_BEATS is not None else 0


#: minimum spacing of "wait" liveness beats sent from blocking wait loops
_WAIT_BEAT_MIN_INTERVAL = 0.2
_LAST_WAIT_BEAT = [0.0]
#: wait beats flow only while a monitor has its kernels installed here —
#: without one, nothing drains the queue between rounds
_WAIT_BEATS_ENABLED = [False]


def worker_wait_beat(phase: str = "wait") -> None:
    """Throttled liveness beat from inside a blocking wait loop.

    A rank blocked in a half-finished collective is *healthy* — it is the
    peer it waits on that stalled.  Without these beats every blocked rank
    goes equally silent and the watchdog has to guess the culprit from
    beat timestamps, which scheduling skew makes unreliable.  The mailbox
    and command-idle wait loops call this on every poll slice; the stuck
    rank is then the only one not beating.  No-op outside a worker
    process or when no monitor is attached.
    """
    if _WORKER_BEATS is None or not _WAIT_BEATS_ENABLED[0]:
        return
    now = time.monotonic()
    if now - _LAST_WAIT_BEAT[0] < _WAIT_BEAT_MIN_INTERVAL:
        return
    _LAST_WAIT_BEAT[0] = now
    _worker_send(
        ("beat", _WORKER_BEATS[1], _WORKER_BEATS[2], 0, phase, "wait", 0, 0.0, now)
    )


def create_local_sink() -> int:
    """A fresh coordinator-local beat sink; returns its token."""
    with _LOCAL_SINKS_LOCK:
        _NEXT_SINK_TOKEN[0] += 1
        token = _NEXT_SINK_TOKEN[0]
        _LOCAL_SINKS[token] = deque()
    return token


def local_sink_send(token: int, message: tuple) -> None:
    with _LOCAL_SINKS_LOCK:
        sink = _LOCAL_SINKS.get(token)
        if sink is not None:
            sink.append(message)


def drain_local_sink(token: int) -> List[tuple]:
    with _LOCAL_SINKS_LOCK:
        sink = _LOCAL_SINKS.get(token)
        if not sink:
            return []
        out = list(sink)
        sink.clear()
    return out


def close_local_sink(token: int) -> None:
    with _LOCAL_SINKS_LOCK:
        _LOCAL_SINKS.pop(token, None)


def drain_beat_messages(messages: Sequence[tuple]) -> List[tuple]:
    """Split raw queue messages: replay eager log records, return beats.

    The beat queue carries two message kinds — ``("beat", ...)`` tuples
    and eagerly-forwarded ``("log", record)`` tuples.  Log records are
    replayed into the coordinator's logging hierarchy immediately
    (whoever drains — monitor thread, recovery, shutdown — forwards
    them); the beat tuples are returned for watchdog processing.
    """
    beats = []
    logs = []
    for message in messages:
        if message and message[0] == "beat":
            beats.append(message)
        elif message and message[0] == "log":
            logs.append(message[1])
    if logs:
        replay_worker_records(logs)
    return beats


# ---------------------------------------------------------------------------
# the per-state channel and its install kernels
# ---------------------------------------------------------------------------
class BeatChannel:
    """Per-PE heartbeat emitter living in the PE's state dict.

    ``begin(phase)`` / ``end(phase)`` bracket a kernel's phase work; the
    ``end`` beat carries the measured duration and the number of items
    processed.  Insert-class kernels pass ``bump_round=True`` so each
    rank tracks its own round counter (insert runs exactly once per
    round on every sampler variant).
    """

    __slots__ = ("rank", "_send", "_epoch_fn", "round", "_starts")

    def __init__(self, rank: int, send: Callable[[tuple], None], epoch_fn: Callable[[], int]) -> None:
        self.rank = int(rank)
        self._send = send
        self._epoch_fn = epoch_fn
        self.round = 0
        self._starts: Dict[str, float] = {}

    def begin(self, phase: str) -> None:
        now = time.monotonic()
        self._starts[phase] = now
        self._send(("beat", self.rank, self._epoch_fn(), self.round, phase, "start", 0, 0.0, now))

    def end(self, phase: str, items: int = 0, *, bump_round: bool = False) -> None:
        now = time.monotonic()
        started = self._starts.pop(phase, now)
        if bump_round:
            self.round += 1
        self._send(
            ("beat", self.rank, self._epoch_fn(), self.round, phase, "end", int(items), now - started, now)
        )


def _zero_epoch() -> int:
    return 0


def install_beat_kernel(state, rank: int, coordinator_pid: int, token: int) -> bool:
    """Install a heartbeat channel into one PE's state.

    In a worker process the channel publishes into the beat queue the
    worker registered at spawn; under the simulated backend (same pid as
    the coordinator) it appends to the monitor's local sink — synthetic
    beats from inline kernels, same wire format.
    """
    if not isinstance(state, dict):
        return False
    if os.getpid() == coordinator_pid:
        def _send(message, _token=token):
            local_sink_send(_token, message)

        state["beat"] = BeatChannel(rank, _send, _zero_epoch)
    elif _WORKER_BEATS is not None:
        state["beat"] = BeatChannel(rank, _worker_send, _worker_epoch)
        _WAIT_BEATS_ENABLED[0] = True
    return True


def uninstall_beat_kernel(state) -> bool:
    """Remove the heartbeat channel (teardown of a monitored run)."""
    if isinstance(state, dict):
        state["beat"] = None
    _WAIT_BEATS_ENABLED[0] = False
    return True


# ---------------------------------------------------------------------------
# watchdog configuration and per-rank state
# ---------------------------------------------------------------------------
@dataclass
class HealthConfig:
    """Tuning knobs of the stall/straggler watchdog.

    The stall deadline of a rank currently inside phase ``f`` is
    ``max(min_deadline, grace + deadline_factor × EWMA_duration(rank, f))``;
    between phases the inter-beat-gap EWMA takes the duration's place.
    ``on_stall`` picks the policy executed when a rank exceeds its
    deadline while a round is armed: ``"warn"`` logs and counts,
    ``"recover"`` kills the stuck worker so the driver's checkpoint
    recovery replays the lost rounds, ``"raise"`` kills it and surfaces
    a :class:`StallError`.
    """

    #: watchdog evaluation period (seconds); also bounds detection latency
    poll_interval: float = 0.05
    #: EWMA smoothing for phase durations and inter-beat gaps
    ewma_alpha: float = 0.25
    #: deadline = max(min_deadline, grace + deadline_factor * EWMA)
    deadline_factor: float = 4.0
    grace: float = 0.25
    min_deadline: float = 1.0
    #: a rank is a straggler when its phase EWMA exceeds this multiple of
    #: the other ranks' mean (and the mean is significant)
    straggler_ratio: float = 2.0
    #: phases with a cross-rank mean below this (seconds) are too fast to
    #: classify stragglers meaningfully
    min_phase_time: float = 1e-3
    #: stall policy: "warn" | "recover" | "raise"
    on_stall: str = "warn"

    def __post_init__(self) -> None:
        if self.on_stall not in ("warn", "recover", "raise"):
            raise ValueError(
                f"on_stall must be 'warn', 'recover' or 'raise', got {self.on_stall!r}"
            )

    def deadline(self, ewma: Optional[float]) -> float:
        if ewma is None:
            return self.min_deadline
        return max(self.min_deadline, self.grace + self.deadline_factor * ewma)


@dataclass
class _RankHealth:
    """Mutable watchdog state of one rank."""

    state: str = "ok"
    round: int = 0
    epoch: int = 0
    beats: int = 0
    items: int = 0
    last_seen: Optional[float] = None  # coordinator clock
    last_sent: Optional[float] = None  # worker clock (CLOCK_MONOTONIC)
    current_phase: Optional[str] = None
    phase_entered: Optional[float] = None  # coordinator clock
    gap_ewma: Optional[float] = None
    phase_ewma: Dict[str, float] = field(default_factory=dict)
    stall_handled: bool = False
    straggler_phases: set = field(default_factory=set)


class HealthMonitor:
    """Coordinator-side heartbeat drain + stall/straggler watchdog.

    Mirrors the :class:`~repro.obs.collect.TraceCollector` lifecycle:
    drivers call :meth:`attach` once, :meth:`arm`/:meth:`disarm` around
    the stretches where workers are expected to make progress,
    :meth:`on_recovery` after a checkpoint restore and :meth:`finish` at
    teardown.  A daemon thread drains beats and evaluates the watchdog
    every ``config.poll_interval`` seconds; :meth:`status` renders the
    live per-rank view the ``/health`` endpoint serves.
    """

    def __init__(
        self,
        config: Optional[HealthConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else HealthConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.ranks: Dict[int, _RankHealth] = {}
        self.stalls_detected = 0
        self.stragglers_detected = 0
        self.watchdog_kills = 0
        self.heartbeats_seen = 0
        self._comm = None
        self._handle = None
        self._token: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.RLock()
        self._armed = False
        self._round = 0
        self._epoch = 0
        self._escalation: Optional[StallError] = None
        # set after a watchdog kill: no further stall handling until the
        # driver re-arms or recovers — the blocked peers of the killed
        # rank would otherwise become the "next oldest" culprit each poll
        self._suspended = False
        self._finished = False

    # -- lifecycle -------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self._comm is not None

    def attach(self, comm, handle) -> "HealthMonitor":
        """Bind to a communicator + PE-state handle and start the watchdog."""
        self._comm = comm
        self._handle = handle
        self._finished = False
        self._epoch = int(getattr(comm, "epoch", 0))
        self._token = create_local_sink()
        with self._lock:
            self.ranks = {rank: _RankHealth(epoch=self._epoch) for rank in range(comm.p)}
        self._install()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-health-monitor", daemon=True
        )
        self._thread.start()
        return self

    def _install(self) -> None:
        comm, handle = self._comm, self._handle
        pid = os.getpid()
        comm.run_per_pe(
            handle,
            install_beat_kernel,
            [(rank, pid, self._token) for rank in range(comm.p)],
        )

    def arm(self, round_index: int) -> None:
        """Start a watched stretch: workers are expected to beat."""
        with self._lock:
            self._round = int(round_index)
            self._armed = True
            self._suspended = False
            now = time.monotonic()
            # restart the silence clocks: the stretch before arming
            # (user think-time between run() calls) must not count
            for health in self.ranks.values():
                if health.last_seen is None:
                    health.last_seen = now

    def disarm(self) -> None:
        """End the watched stretch (idle workers are healthy again)."""
        with self._lock:
            self._armed = False

    @property
    def armed(self) -> bool:
        return self._armed

    def escalation(self) -> Optional[StallError]:
        """The pending ``on_stall="raise"`` error, if the watchdog fired."""
        return self._escalation

    def on_recovery(self, *, epoch: int, dead_ranks: Sequence[int]) -> None:
        """Driver hook after ``comm.recover()`` + checkpoint restore.

        Respawned workers lost their channels — reinstall everywhere —
        and every rank's watchdog state restarts at the new epoch so the
        pre-failure silence cannot re-trigger the policy.
        """
        self._epoch = int(epoch)
        self._escalation = None
        self._suspended = False
        self._install()
        now = time.monotonic()
        with self._lock:
            for rank, health in self.ranks.items():
                health.state = "ok"
                health.epoch = self._epoch
                health.current_phase = None
                health.phase_entered = None
                health.stall_handled = False
                health.last_seen = now
        self.registry.counter(
            "repro_watchdog_recoveries_total", "recoveries escalated or observed by the watchdog"
        ).inc()

    def finish(self) -> None:
        """Stop the watchdog thread and uninstall the channels.  Idempotent."""
        if self._finished:
            return
        self._finished = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._comm is not None:
            try:
                self._comm.run_per_pe(
                    self._handle,
                    uninstall_beat_kernel,
                    None,
                )
            except Exception:  # workers may already be shut down
                pass
            self._drain_once()
        if self._token is not None:
            close_local_sink(self._token)
            self._token = None

    # -- beat intake -----------------------------------------------------
    def _drain_once(self) -> int:
        """Pull pending beats from both transports and apply them."""
        messages: List[tuple] = []
        if self._token is not None:
            messages.extend(drain_local_sink(self._token))
        comm = self._comm
        if comm is not None and hasattr(comm, "drain_beats"):
            try:
                messages.extend(comm.drain_beats(replay_logs=False))
            except Exception:  # pragma: no cover - comm torn down mid-drain
                pass
        beats = drain_beat_messages(messages)
        now = time.monotonic()
        with self._lock:
            for raw in beats:
                self._apply(raw, now)
        return len(beats)

    def _apply(self, raw: tuple, now: float) -> None:
        _, rank, epoch, round_index, phase, kind, items, duration, sent_at = raw
        if epoch < self._epoch:
            return  # stale beat from before a recovery
        health = self.ranks.get(int(rank))
        if health is None:  # pragma: no cover - unknown rank
            return
        self.heartbeats_seen += 1
        if health.last_seen is not None:
            gap = max(now - health.last_seen, 0.0)
            alpha = self.config.ewma_alpha
            health.gap_ewma = gap if health.gap_ewma is None else (
                alpha * gap + (1.0 - alpha) * health.gap_ewma
            )
        health.last_seen = now
        health.last_sent = float(sent_at)
        health.beats += 1
        health.epoch = int(epoch)
        if kind == "wait":
            # pure liveness: the rank is blocked in a wait loop, not
            # progressing — keep round/items/phase bookkeeping untouched
            if health.stall_handled:
                health.stall_handled = False
            if health.state in ("stalled", "dead"):
                health.state = "ok"
            return
        health.round = int(round_index)
        health.items += int(items)
        if kind == "start":
            health.current_phase = phase
            health.phase_entered = now
        else:
            health.current_phase = None
            health.phase_entered = None
            alpha = self.config.ewma_alpha
            previous = health.phase_ewma.get(phase)
            health.phase_ewma[phase] = duration if previous is None else (
                alpha * duration + (1.0 - alpha) * previous
            )
        # a fresh beat from a flagged rank clears the stall episode
        if health.stall_handled:
            health.stall_handled = False
        if health.state in ("stalled", "dead"):
            health.state = "ok"

    # -- watchdog --------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.config.poll_interval):
            try:
                self._drain_once()
                self._evaluate()
                self._update_registry()
            except Exception:  # pragma: no cover - monitor must never kill the run
                _logger.exception("health monitor iteration failed")

    def _evaluate(self) -> None:
        now = time.monotonic()
        alive = None
        comm = self._comm
        if comm is not None and hasattr(comm, "workers_alive"):
            try:
                alive = comm.workers_alive
            except Exception:  # pragma: no cover
                alive = None
        with self._lock:
            overdue: List[Tuple[int, float]] = []  # (rank, silent_for)
            for rank, health in self.ranks.items():
                if alive is not None and not alive[rank]:
                    health.state = "dead"
                    continue
                elif health.state == "dead":
                    health.state = "ok"
                self._classify_straggler(rank, health)
                if not self._armed or self._suspended or health.last_seen is None:
                    continue
                in_phase_silent = (
                    health.current_phase is not None
                    and health.phase_entered is not None
                    and health.last_seen <= health.phase_entered
                )
                if in_phase_silent:
                    # nothing heard since the phase began: judge against
                    # the adaptive phase-duration deadline (a long kernel
                    # is not a stall)
                    ewma = health.phase_ewma.get(health.current_phase)
                    silent = now - health.phase_entered
                else:
                    # between phases, or in-phase but emitting "wait"
                    # liveness beats from a blocking wait loop
                    ewma = health.gap_ewma
                    silent = now - health.last_seen
                if silent > self.config.deadline(ewma):
                    overdue.append((rank, silent))
            if not overdue:
                return
            # in a blocked collective EVERY rank goes quiet together; the
            # culprit is the one that stopped *first*.  Order by the
            # worker-side send timestamps (CLOCK_MONOTONIC shares its base
            # across processes on one host) — the coordinator-side receive
            # times are quantised to whole drain batches and tie.  One
            # culprit per episode: killing peers that are merely blocked
            # would turn one hang into an avoidable mass recovery.
            def _sent(entry):
                rank, _ = entry
                sent = self.ranks[rank].last_sent
                return (sent if sent is not None else -1.0, rank)

            rank, silent = min(overdue, key=_sent)
            health = self.ranks[rank]
            if health.state != "stalled":
                health.state = "stalled"
                self.stalls_detected += 1
                self.registry.counter(
                    "repro_stalls_total", "watchdog stall detections"
                ).inc()
            if not health.stall_handled:
                health.stall_handled = True
                self._execute_stall_policy(rank, health, silent)

    def _classify_straggler(self, rank: int, health: _RankHealth) -> None:
        if health.state in ("stalled", "dead"):
            return
        is_straggler = False
        for phase, ewma in health.phase_ewma.items():
            others = [
                peer.phase_ewma[phase]
                for r, peer in self.ranks.items()
                if r != rank and phase in peer.phase_ewma
            ]
            if not others:
                continue
            mean = sum(others) / len(others)
            if mean < self.config.min_phase_time:
                continue
            if ewma > self.config.straggler_ratio * mean:
                is_straggler = True
                if phase not in health.straggler_phases:
                    health.straggler_phases.add(phase)
                    self.stragglers_detected += 1
                    self.registry.counter(
                        "repro_stragglers_total", "watchdog straggler detections"
                    ).inc()
            else:
                health.straggler_phases.discard(phase)
        health.state = "straggler" if is_straggler else "ok"

    def _execute_stall_policy(self, rank: int, health: _RankHealth, silent: float) -> None:
        policy = self.config.on_stall
        phase = health.current_phase
        _logger.warning(
            "rank %d stalled (no heartbeat for %.2fs, phase=%s, round=%d); policy=%s",
            rank,
            silent,
            phase,
            health.round,
            policy,
        )
        if policy == "warn":
            return
        error = StallError(rank, phase, silent)
        if policy == "raise":
            self._escalation = error
        self._suspended = True
        killed = self._kill_worker(rank)
        if not killed and policy == "recover":
            # nothing to kill (simulated backend): record the intent; the
            # coordinator itself is the one executing the kernels there
            _logger.warning(
                "on_stall='recover' cannot kill rank %d on backend %r",
                rank,
                getattr(self._comm, "kind", "?"),
            )

    def _kill_worker(self, rank: int) -> bool:
        comm = self._comm
        pids = getattr(comm, "worker_pids", None)
        if not pids:
            return False
        try:
            pid = pids[rank]
            os.kill(pid, signal.SIGKILL)
        except (OSError, IndexError):  # pragma: no cover - already gone
            return False
        self.watchdog_kills += 1
        self.registry.counter(
            "repro_watchdog_kills_total", "stuck workers killed by the watchdog"
        ).inc()
        _logger.warning("watchdog killed stuck worker rank %d (pid %d)", rank, pid)
        return True

    # -- exposure --------------------------------------------------------
    def skew_by_phase(self) -> Dict[str, float]:
        """Live per-phase straggler skew (``max/mean`` over rank EWMAs)."""
        with self._lock:
            out: Dict[str, float] = {}
            phases = {p for h in self.ranks.values() for p in h.phase_ewma}
            for phase in sorted(phases):
                values = [
                    h.phase_ewma[phase] for h in self.ranks.values() if phase in h.phase_ewma
                ]
                if not values:
                    continue
                mean = sum(values) / len(values)
                out[phase] = max(values) / mean if mean > 0 else 1.0
            return out

    def _update_registry(self) -> None:
        registry = self.registry
        with self._lock:
            states = [h.state for h in self.ranks.values()]
        for name, label in (
            ("repro_ranks_ok", "ok"),
            ("repro_ranks_straggler", "straggler"),
            ("repro_ranks_stalled", "stalled"),
            ("repro_ranks_dead", "dead"),
        ):
            registry.gauge(name, f"ranks currently classified {label}").set(
                states.count(label)
            )
        registry.counter("repro_heartbeats_total", "worker heartbeats drained")
        hb = registry.get("repro_heartbeats_total")
        delta = self.heartbeats_seen - hb.value
        if delta > 0:
            hb.inc(delta)
        skews = self.skew_by_phase()
        overall = max(skews.values()) if skews else 1.0
        registry.gauge(
            "repro_straggler_skew",
            "live max/mean ratio of per-rank phase-duration EWMAs (worst phase)",
        ).set(overall)
        for phase, skew in skews.items():
            registry.gauge(
                f"repro_phase_skew_{phase}", f"live max/mean duration skew of phase {phase}"
            ).set(skew)

    def status(self) -> dict:
        """JSON-safe live view served by ``GET /health``."""
        now = time.monotonic()
        with self._lock:
            ranks = {}
            for rank, health in sorted(self.ranks.items()):
                ranks[str(rank)] = {
                    "state": health.state,
                    "round": health.round,
                    "epoch": health.epoch,
                    "phase": health.current_phase,
                    "beats": health.beats,
                    "items": health.items,
                    "last_beat_age_s": (
                        None if health.last_seen is None else round(now - health.last_seen, 6)
                    ),
                }
            states = [h.state for h in self.ranks.values()]
        healthy = all(s == "ok" for s in states)
        degraded = any(s == "straggler" for s in states)
        broken = any(s in ("stalled", "dead") for s in states)
        return {
            "status": "unhealthy" if broken else ("degraded" if degraded else "ok"),
            "healthy": healthy,
            "p": len(states),
            "epoch": self._epoch,
            "armed": self._armed,
            "round": self._round,
            "on_stall": self.config.on_stall,
            "stalls_detected": self.stalls_detected,
            "stragglers_detected": self.stragglers_detected,
            "watchdog_kills": self.watchdog_kills,
            "heartbeats": self.heartbeats_seen,
            "skew_by_phase": self.skew_by_phase(),
            "ranks": ranks,
        }


def resolve_health(
    health,
    *,
    on_stall: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Optional[HealthMonitor]:
    """Resolve a driver's ``health=`` argument (the ``resolve_trace`` shape).

    ``None``/``False`` → no monitoring; ``True`` or a :class:`HealthConfig`
    → a fresh monitor; a :class:`HealthMonitor` instance passes through.
    ``on_stall`` overrides the config policy; ``registry`` lets drivers
    share one registry between tracing and health (a single ``/metrics``).
    """
    if health is None or health is False:
        if on_stall is not None and on_stall != "warn":
            raise ValueError("on_stall= requires health monitoring (health=True)")
        return None
    if health is True:
        config = HealthConfig()
    elif isinstance(health, HealthConfig):
        config = health
    elif isinstance(health, HealthMonitor):
        if on_stall is not None:
            health.config.on_stall = on_stall
            health.config.__post_init__()
        if registry is not None and health.registry is not registry:
            health.registry = registry
        return health
    else:
        raise TypeError(
            "health must be None, a bool, a HealthConfig or a HealthMonitor, "
            f"got {type(health).__name__}"
        )
    if on_stall is not None:
        config.on_stall = on_stall
        config.__post_init__()
    return HealthMonitor(config, registry=registry)

"""Chrome trace-event JSON export and validation.

The collector's aligned events render into the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
JSON that ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_
load directly.  Every timeline — the coordinator plus one per PE — is
rendered as its own *process* (``pid``) with a ``process_name`` metadata
record, so the UI shows one labelled track per PE.

Timestamps are microseconds on the coordinator's monotonic clock; the
collector has already subtracted each worker's calibrated offset, so
spans from different processes align on one timeline.

Everything here is plain-JSON safe: :func:`write_chrome_trace`
serialises with ``allow_nan=False`` and coerces numpy scalars / rejects
non-finite floats first, so an exported file never contains the
spec-invalid ``NaN``/``Infinity`` tokens.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "chrome_trace_dict",
    "write_chrome_trace",
    "validate_chrome_trace",
    "COORDINATOR_PID",
]

#: pid of the coordinator track; PE ``r`` gets pid ``COORDINATOR_PID + 1 + r``
COORDINATOR_PID = 1

#: collected event tuple: (track, ph, name, cat, ts, dur, args)
CollectedEvent = Tuple[str, str, str, Optional[str], float, float, Optional[dict]]


def _json_safe(value):
    """Coerce ``value`` to something JSON-serialisable without NaN/Inf."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") else None
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    # numpy scalars expose item(); anything else falls back to repr
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _json_safe(item())
        except (TypeError, ValueError):  # pragma: no cover - odd array-likes
            pass
    return repr(value)


def track_pid(track: str, order: Sequence[str]) -> int:
    """Stable pid for a track name given the sorted track order."""
    return COORDINATOR_PID + list(order).index(track)


def _track_order(events: Sequence[CollectedEvent]) -> List[str]:
    tracks = {track for track, *_ in events}
    tracks.add("coordinator")
    # coordinator first, then PEs by rank (pe0, pe1, ... sorts numerically
    # via the (len, str) key), then anything else alphabetically
    def key(name: str):
        if name == "coordinator":
            return (0, 0, "")
        if name.startswith("pe") and name[2:].isdigit():
            return (1, int(name[2:]), "")
        return (2, 0, name)

    return sorted(tracks, key=key)


def chrome_trace_dict(
    events: Sequence[CollectedEvent], *, metadata: Optional[dict] = None
) -> dict:
    """Build the Chrome trace-event JSON object for collected events."""
    order = _track_order(events)
    trace_events: List[dict] = []
    for index, track in enumerate(order):
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": COORDINATOR_PID + index,
                "tid": 0,
                "args": {"name": track},
            }
        )
    pids = {track: COORDINATOR_PID + index for index, track in enumerate(order)}
    for track, ph, name, cat, ts, dur, args in events:
        record: Dict[str, object] = {
            "ph": ph,
            "name": name,
            "pid": pids[track],
            "tid": 0,
            "ts": ts * 1e6,
        }
        if cat:
            record["cat"] = cat
        if ph == "X":
            record["dur"] = dur * 1e6
        if args:
            record["args"] = _json_safe(args)
        trace_events.append(record)
    out: Dict[str, object] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        out["metadata"] = _json_safe(metadata)
    return out


def write_chrome_trace(
    path: Union[str, Path],
    events: Sequence[CollectedEvent],
    *,
    metadata: Optional[dict] = None,
) -> Path:
    """Serialise collected events to ``path`` as Chrome trace JSON."""
    path = Path(path)
    payload = chrome_trace_dict(events, metadata=metadata)
    path.write_text(json.dumps(payload, allow_nan=False, separators=(",", ":")) + "\n")
    return path


_VALID_PHASES = {"X", "i", "I", "C", "M", "B", "E"}


def validate_chrome_trace(trace: dict) -> List[dict]:
    """Check ``trace`` against the trace-event schema; returns the events.

    Raises :class:`ValueError` on the first violation: a missing
    ``traceEvents`` list, an event without the required keys, an unknown
    phase code, a complete event without ``dur``, or a non-finite
    timestamp.  Used by the obs tests and the ``bench_obs`` gate.
    """
    if not isinstance(trace, dict) or not isinstance(trace.get("traceEvents"), list):
        raise ValueError("trace must be a dict with a 'traceEvents' list")
    events = trace["traceEvents"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for key in ("ph", "name", "pid"):
            if key not in event:
                raise ValueError(f"traceEvents[{index}] missing required key {key!r}")
        ph = event["ph"]
        if ph not in _VALID_PHASES:
            raise ValueError(f"traceEvents[{index}] has unknown phase code {ph!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts != ts:
                raise ValueError(f"traceEvents[{index}] has invalid ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur != dur or dur < 0:
                raise ValueError(f"traceEvents[{index}] complete event has invalid dur")
    # the file (or dict) must round-trip strict JSON: no NaN/Infinity
    json.dumps(trace, allow_nan=False)
    return events

"""Wall-clock driver for real (and simulated) parallel executions.

:class:`ParallelStreamingRun` mirrors
:class:`~repro.runtime.simulator.StreamingSimulation` but reports
**measured wall-clock** :class:`~repro.runtime.metrics.RunMetrics` instead
of simulated time: per-PE throughput, and — when compared against a
``p=1`` run — real speedups.  It is the driver behind
``benchmarks/bench_parallel_scaling.py``.

The stream is generated *inside* each PE via
:class:`~repro.stream.shard.WorkerStreamShard`
(:meth:`~repro.core.distributed.DistributedReservoirSampler.attach_worker_stream`),
so under the multiprocess backend both batch generation and ingestion run
in parallel in the worker processes and the coordinator only orchestrates
the select/threshold collectives.  Because the shards replicate
:class:`~repro.stream.minibatch.MiniBatchStream` exactly and both backends
execute the same kernels, a run under ``comm="sim"`` and a run under
``comm="process"`` with the same seed produce byte-identical samples —
only the reported times differ in meaning (simulated vs measured).
"""

from __future__ import annotations

import time
from typing import Optional, Union

import numpy as np

from repro.network.base import Communicator, make_communicator
from repro.obs.collect import resolve_trace
from repro.obs.health import resolve_health
from repro.obs.log import get_logger
from repro.obs.serve import resolve_serve
from repro.runtime.metrics import RoundMetrics, RunMetrics
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["ParallelStreamingRun"]

_logger = get_logger("runtime.parallel")


class ParallelStreamingRun:
    """Run a sampler over worker-generated mini-batches, measuring wall time.

    Parameters
    ----------
    algorithm:
        Paper name of the algorithm (``"ours"``, ``"ours-8"``,
        ``"ours-variable"``, ``"gather"``).
    k:
        Sample size.
    p:
        Number of PEs (ignored when ``comm`` is a constructed communicator).
    comm:
        ``"process"`` (default) for real multiprocess workers, ``"sim"``
        for the inline simulator, or an already constructed
        :class:`~repro.network.base.Communicator`.
    batch_size:
        Items per PE per round, or ``"auto"`` to let a
        :class:`~repro.pipeline.autotune.BatchSizeAutotuner` resize the
        shards between rounds toward ``target_round_time`` seconds per
        round (adaptive mini-batch sizing).
    target_round_time:
        Latency target of the ``"auto"`` batch sizing (seconds/round).
    warmup_rounds:
        Rounds processed before measurement starts.  The steady state —
        few insertions per batch — only establishes itself after the first
        few batches, exactly as in
        :class:`~repro.runtime.simulator.StreamingSimulation`.
    weighted / store / seed / weights / kernel_tier:
        Forwarded to the sampler / stream shards.
    trace:
        ``True`` or a :class:`~repro.obs.collect.TraceCollector` enables
        distributed tracing (per-PE spans, clock-aligned collection,
        Chrome-trace export; see :mod:`repro.obs`).  Exposed as
        :attr:`trace`; never touches any RNG.
    health / on_stall / serve_metrics:
        Live health monitoring (worker heartbeats + stall/straggler
        watchdog, see :mod:`repro.obs.health`) and the HTTP
        ``/metrics`` + ``/health`` exporter (:mod:`repro.obs.serve`) —
        same semantics as on
        :class:`~repro.core.api.DistributedSamplingRun`.  Exposed as
        :attr:`health` and :attr:`server`.

    Use as a context manager (or call :meth:`close`) so the process
    backend's workers are torn down deterministically.
    """

    def __init__(
        self,
        algorithm: str = "ours",
        *,
        k: int = 1000,
        p: int = 4,
        comm: Union[str, Communicator] = "process",
        batch_size: Union[int, str] = 4096,
        warmup_rounds: int = 1,
        weighted: bool = True,
        store: str = "merge",
        seed: Optional[int] = 0,
        weights=None,
        target_round_time: Optional[float] = None,
        kernel_tier: str = "numpy",
        trace=None,
        health=None,
        on_stall: Optional[str] = None,
        serve_metrics=None,
        **comm_kwargs,
    ) -> None:
        from repro.core.api import make_distributed_sampler
        from repro.pipeline.autotune import BatchSizeAutotuner

        if isinstance(comm, Communicator):
            self.comm = comm
            self._owns_comm = False
        else:
            self.comm = make_communicator(comm, p, **comm_kwargs)
            self._owns_comm = True
        self.algorithm = algorithm
        self.autotuner, self.batch_size = BatchSizeAutotuner.from_arg(
            batch_size, target_round_time
        )
        self.warmup_rounds = check_positive_int(warmup_rounds, "warmup_rounds", allow_zero=True)
        self._warmed_up = False
        try:
            self.sampler = make_distributed_sampler(
                algorithm,
                k,
                self.comm,
                weighted=weighted,
                store=store,
                seed=seed,
                kernel_tier=kernel_tier,
            )
            self.sampler.attach_worker_stream(
                self.batch_size, seed=seed, weights=weights, variable=self.autotuner is not None
            )
            self.trace = resolve_trace(trace)
            if self.trace is not None:
                self.trace.attach(self.comm, self.sampler._handle)
            shared_registry = self.trace.registry if self.trace is not None else None
            self.health = resolve_health(health, on_stall=on_stall, registry=shared_registry)
            if self.health is not None:
                self.health.attach(self.comm, self.sampler._handle)
            self.server = resolve_serve(
                serve_metrics,
                registry=shared_registry
                if shared_registry is not None
                else (self.health.registry if self.health is not None else None),
                monitor=self.health,
            )
        except BaseException:
            # don't leak the workers we just spawned on invalid arguments
            if self._owns_comm:
                self.comm.shutdown()
            raise
        self.metrics = RunMetrics(
            p=self.comm.p,
            k=int(getattr(self.sampler, "k", k)),
            algorithm=algorithm,
            store=str(getattr(self.sampler, "store", "")),
            comm_backend=self.comm.kind,
            kernel_tier=str(getattr(self.sampler, "kernel_tier", "")),
        )

    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        return self.comm.p

    def _ensure_warmup(self) -> None:
        if self._warmed_up:
            return
        for _ in range(self.warmup_rounds):
            self.sampler.process_stream_round()
        self._warmed_up = True

    def step(self) -> RoundMetrics:
        """Process one measured round and record its metrics."""
        if self.health is not None:
            self.health.arm(self.metrics.num_rounds)
        try:
            self._ensure_warmup()
            start = time.perf_counter()
            with self.comm.tracer.span("round", cat="round", round=self.metrics.num_rounds):
                round_metrics = self.sampler.process_stream_round()
            elapsed = time.perf_counter() - start
        finally:
            if self.health is not None:
                self.health.disarm()
                self.metrics.stalls = self.health.stalls_detected
                self.metrics.stragglers_detected = self.health.stragglers_detected
        self.metrics.wall_time += elapsed
        self.metrics.add_round(round_metrics)
        if self.trace is not None:
            self.trace.record_round(round_metrics, wall_time=elapsed)
        if self.autotuner is not None:
            resized = self.autotuner.update(elapsed)
            if resized is not None:
                from repro.core import pe_kernels

                _logger.debug(
                    "autotuner resized batch %d -> %d (round took %.4fs)",
                    self.batch_size,
                    resized,
                    elapsed,
                )
                if self.trace is not None:
                    self.trace.on_autotune(self.batch_size, resized)
                self.batch_size = resized
                self.comm.run_per_pe(
                    self.sampler._handle,
                    pe_kernels.set_batch_size_kernel,
                    [(resized,)] * self.p,
                )
        return round_metrics

    def run_rounds(self, rounds: int) -> RunMetrics:
        """Process a fixed number of measured rounds (after warm-up)."""
        for _ in range(check_positive_int(rounds, "rounds", allow_zero=True)):
            self.step()
        return self.metrics

    def run_for_wall_time(
        self, duration: float, *, max_rounds: int = 10_000, min_rounds: int = 1
    ) -> RunMetrics:
        """Process rounds until ``duration`` seconds of wall time elapsed.

        Mirrors the paper's fixed-duration runs (30 s per configuration):
        faster configurations complete more mini-batches.  At least
        ``min_rounds`` and at most ``max_rounds`` rounds are processed.
        """
        check_positive(duration, "duration")
        check_positive_int(max_rounds, "max_rounds")
        rounds_done = 0
        while rounds_done < max_rounds and (
            rounds_done < min_rounds or self.metrics.wall_time < duration
        ):
            self.step()
            rounds_done += 1
        return self.metrics

    # ------------------------------------------------------------------
    def sample_ids(self) -> np.ndarray:
        return self.sampler.sample_ids()

    def communication_summary(self) -> dict:
        """Summary of all communication recorded during the run.

        Under the process backend the times are measured wall-clock
        seconds; under the simulator they are simulated seconds.
        """
        return self.comm.ledger.summary()

    def close(self) -> None:
        """Shut down the communicator if this run created it."""
        if self.server is not None:
            self.server.close()
        if self.health is not None:
            self.health.finish()
        if self.trace is not None:
            self.trace.finish()
        if self._owns_comm:
            self.comm.shutdown()

    def __enter__(self) -> "ParallelStreamingRun":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

"""Simulation runtime: machine model, per-phase metrics, and the driver.

The paper evaluates its algorithms on a real supercomputer; this
reproduction executes the same algorithms inside one process and derives
*simulated* running times from

* a :class:`~repro.runtime.machine.MachineSpec` describing per-operation
  local-work costs (including an explicit cache-capacity effect) and the
  ``alpha``/``beta`` communication constants, and
* the per-phase operation counts produced by the samplers plus the
  communication ledger filled in by the simulated communicator.

:class:`~repro.runtime.simulator.StreamingSimulation` drives a sampler over
a mini-batch stream for a number of rounds and aggregates
:class:`~repro.runtime.metrics.RoundMetrics` into a
:class:`~repro.runtime.metrics.RunMetrics` record, from which the scaling
benchmarks read speedups, throughput and the running-time composition.

:class:`~repro.runtime.parallel.ParallelStreamingRun` is its wall-clock
counterpart for the *real* multiprocess execution backend: the same round
loop, but the stream is generated inside the worker processes and the
metrics carry measured time.
"""

from repro.runtime.clock import PhaseClock
from repro.runtime.machine import MachineSpec
from repro.runtime.metrics import PhaseTimes, RoundMetrics, RunMetrics
from repro.runtime.parallel import ParallelStreamingRun
from repro.runtime.simulator import StreamingSimulation

__all__ = [
    "MachineSpec",
    "PhaseClock",
    "PhaseTimes",
    "RoundMetrics",
    "RunMetrics",
    "StreamingSimulation",
    "ParallelStreamingRun",
]

"""Per-phase accounting of simulated local work.

The samplers charge local work (scanning, key generation, tree operations,
sequential selection) to a :class:`PhaseClock`, keyed by phase label and PE
rank.  At the end of a round the clock reports, per phase, the *maximum*
local time over all PEs — in the bulk-synchronous execution of the
mini-batch model the slowest PE determines when the collective operations
of the next phase can start — which is then combined with the
communication time from the cost ledger.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

__all__ = ["PhaseClock"]


class PhaseClock:
    """Accumulates local-work time per (phase, PE)."""

    def __init__(self, p: int) -> None:
        if p <= 0:
            raise ValueError("p must be positive")
        self.p = int(p)
        self._times: Dict[str, List[float]] = {}

    def charge(self, phase: str, pe: int, seconds: float) -> None:
        """Charge ``seconds`` of local work of PE ``pe`` to ``phase``."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        if not 0 <= pe < self.p:
            raise IndexError(f"PE {pe} out of range 0..{self.p - 1}")
        bucket = self._times.setdefault(phase, [0.0] * self.p)
        bucket[pe] += float(seconds)

    def phases(self) -> Iterable[str]:
        return self._times.keys()

    def per_pe(self, phase: str) -> List[float]:
        """Per-PE local time charged to ``phase`` so far."""
        return list(self._times.get(phase, [0.0] * self.p))

    def max_time(self, phase: str) -> float:
        """Bottleneck (maximum over PEs) local time of ``phase``."""
        bucket = self._times.get(phase)
        return max(bucket) if bucket else 0.0

    def total_max_time(self) -> float:
        """Sum over phases of the bottleneck local time."""
        return sum(self.max_time(phase) for phase in self._times)

    def snapshot(self) -> Dict[str, List[float]]:
        """Copy of the full (phase -> per-PE times) table."""
        return {phase: list(times) for phase, times in self._times.items()}

    def reset(self) -> None:
        self._times.clear()

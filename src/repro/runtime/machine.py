"""Machine model used to convert operation counts into simulated time.

The simulated running times are computed as

``local work`` (per PE, the maximum over PEs is what counts per phase)
    operation counts reported by the samplers (items scanned, keys
    generated, tree operations, sequential selection work, ...) multiplied
    by the per-operation costs below.  Scanning a mini-batch whose size
    exceeds the modelled cache capacity pays the ``out_of_cache_factor``,
    which is the mechanism behind the superlinear strong-scaling jump the
    paper observes when per-PE batches start fitting into cache.

``communication``
    charged by the simulated communicator according to the
    ``alpha``/``beta`` model (see :mod:`repro.network.cost_model`).

The default constants are chosen to mimic the *ratios* of a compiled,
vectorised implementation on a ForHLR-II-like node (the paper reports
roughly 10^8..10^9 items/s per PE of local processing): a few nanoseconds
to scan an item, tens of nanoseconds per B+-tree level, a couple of
microseconds of message start-up latency.  Absolute values only set the
time unit; the scaling *shapes* depend on the ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.network.cost_model import CostParameters
from repro.utils.validation import check_positive

__all__ = ["MachineSpec"]


@dataclass(frozen=True)
class MachineSpec:
    """Per-operation local costs plus the communication constants."""

    #: time to examine one item of the mini-batch in the skip loop (in-cache)
    time_scan_item: float = 1.0e-9
    #: extra multiplier on scanning when the local batch exceeds the cache
    out_of_cache_factor: float = 4.0
    #: number of items of the local batch that fit into the cache
    cache_items: int = 100_000
    #: time to draw one random variate / compute one key
    time_key_gen: float = 12.0e-9
    #: time per level of a B+-tree operation (insert/rank/select/split)
    time_tree_level: float = 25.0e-9
    #: time to append one candidate to a plain array (centralized algorithm)
    time_array_append: float = 3.0e-9
    #: per-item time of the root's sequential selection (quickselect pass)
    time_sequential_select_item: float = 6.0e-9
    #: communication constants (alpha/beta model)
    comm: CostParameters = field(default_factory=CostParameters)

    def __post_init__(self) -> None:
        check_positive(self.time_scan_item, "time_scan_item")
        check_positive(self.out_of_cache_factor, "out_of_cache_factor")
        check_positive(self.time_key_gen, "time_key_gen")
        check_positive(self.time_tree_level, "time_tree_level")
        check_positive(self.time_array_append, "time_array_append")
        check_positive(self.time_sequential_select_item, "time_sequential_select_item")
        if self.cache_items <= 0:
            raise ValueError("cache_items must be positive")

    # ------------------------------------------------------------------
    @classmethod
    def forhlr_like(cls) -> "MachineSpec":
        """Defaults mimicking the paper's evaluation platform ratios."""
        return cls()

    @classmethod
    def latency_bound(cls, alpha: float = 10.0e-6) -> "MachineSpec":
        """A machine with expensive message start-ups (stress communication)."""
        return cls(comm=CostParameters(alpha=alpha, beta=2.0e-9))

    def with_cache_items(self, cache_items: int) -> "MachineSpec":
        """Copy of the spec with a different modelled cache capacity."""
        return replace(self, cache_items=int(cache_items))

    def with_comm(self, comm: CostParameters) -> "MachineSpec":
        """Copy of the spec with different communication constants."""
        return replace(self, comm=comm)

    # ------------------------------------------------------------------
    # local-work formulas
    # ------------------------------------------------------------------
    def scan_time(self, items: int, batch_size: Optional[int] = None) -> float:
        """Time to stream over ``items`` items of a local batch.

        ``batch_size`` (defaults to ``items``) decides whether the batch is
        cache-resident; larger batches pay the out-of-cache factor.
        """
        if items <= 0:
            return 0.0
        reference = items if batch_size is None else batch_size
        factor = 1.0 if reference <= self.cache_items else self.out_of_cache_factor
        return self.time_scan_item * factor * items

    def key_gen_time(self, count: int) -> float:
        """Time to generate ``count`` random keys / skip deviates."""
        return self.time_key_gen * max(count, 0)

    def tree_op_time(self, ops: int, size: int) -> float:
        """Time for ``ops`` B+-tree operations on a tree of ``size`` items."""
        if ops <= 0:
            return 0.0
        levels = math.log2(size + 2.0)
        return self.time_tree_level * levels * ops

    def array_append_time(self, count: int) -> float:
        """Time to buffer ``count`` candidates in a plain array."""
        return self.time_array_append * max(count, 0)

    def sequential_select_time(self, items: int) -> float:
        """Time of a sequential (quick-)selection over ``items`` items."""
        return self.time_sequential_select_item * max(items, 0)

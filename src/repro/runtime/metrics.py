"""Per-round and per-run metrics of a sampling execution.

Runs under the simulated backend report *simulated* time derived from the
machine model; runs under the real multiprocess backend additionally carry
*measured wall-clock* time (:attr:`RunMetrics.wall_time`, filled in by
:class:`~repro.runtime.parallel.ParallelStreamingRun`) from which measured
throughput and speedup are derived.

The phase names follow Figure 6 of the paper:

* ``"insert"``  — local processing of the mini-batch (skip loop, key
  generation, insertions into the local reservoir / candidate buffer),
* ``"select"``  — establishing the new global threshold: the distributed
  selection for our algorithms, the sequential selection at the root for
  the centralized algorithm,
* ``"threshold"`` — the all-reduction that publishes the new threshold plus
  pruning the local reservoirs,
* ``"gather"``  — only used by the centralized algorithm: shipping the
  candidate items to the root,
* ``"expire"`` — only used by the windowed samplers: agreeing on the
  newest timestamp and evicting expired candidates from the buffers.

Every phase time is split into a *local* component (bottleneck local work,
i.e. the maximum over PEs) and a *communication* component (from the cost
ledger), so the benchmarks can report both the Figure 6 composition and the
overall speedups/throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.selection.base import SelectionStats

__all__ = ["PHASES", "PhaseTimes", "RoundMetrics", "RunMetrics"]

#: canonical phase order used in reports
PHASES = ("insert", "expire", "select", "threshold", "gather")


@dataclass
class PhaseTimes:
    """Local and communication time of one phase."""

    local: float = 0.0
    comm: float = 0.0

    @property
    def total(self) -> float:
        return self.local + self.comm

    def __add__(self, other: "PhaseTimes") -> "PhaseTimes":
        return PhaseTimes(local=self.local + other.local, comm=self.comm + other.comm)


@dataclass
class RoundMetrics:
    """Metrics of one processed mini-batch round."""

    round_index: int
    batch_items: int
    items_seen_total: int
    sample_size: int
    threshold: Optional[float]
    phase_times: Dict[str, PhaseTimes] = field(default_factory=dict)
    insertions_per_pe: List[int] = field(default_factory=list)
    candidates_gathered: int = 0
    selection_stats: Optional[SelectionStats] = None
    selection_ran: bool = False
    #: windowed samplers: candidates expired out of the buffers this round
    evicted_items: int = 0
    #: windowed samplers: total buffered candidates (over-sample) after expiry
    window_buffer_items: int = 0

    @property
    def simulated_time(self) -> float:
        """Total simulated time of this round."""
        return sum(pt.total for pt in self.phase_times.values())

    @property
    def max_insertions(self) -> int:
        """Bottleneck number of insertions into any local reservoir."""
        return max(self.insertions_per_pe) if self.insertions_per_pe else 0

    @property
    def total_insertions(self) -> int:
        return sum(self.insertions_per_pe)

    def phase_total(self, phase: str) -> float:
        pt = self.phase_times.get(phase)
        return pt.total if pt else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "round": self.round_index,
            "batch_items": self.batch_items,
            "items_seen_total": self.items_seen_total,
            "sample_size": self.sample_size,
            "threshold": self.threshold,
            "simulated_time": self.simulated_time,
            "phases": {name: (pt.local, pt.comm) for name, pt in self.phase_times.items()},
            "total_insertions": self.total_insertions,
            "max_insertions": self.max_insertions,
            "candidates_gathered": self.candidates_gathered,
            "selection_ran": self.selection_ran,
            "evicted_items": self.evicted_items,
            "window_buffer_items": self.window_buffer_items,
        }


@dataclass
class RunMetrics:
    """Aggregated metrics of a full simulated run (many rounds)."""

    p: int
    k: int
    algorithm: str
    #: reservoir store backend the run used ("merge", "btree", or "" when unknown)
    store: str = ""
    #: communicator backend the run used ("sim", "process", or "" when unknown)
    comm_backend: str = ""
    #: measured wall-clock seconds of the run (0 when only simulated time exists)
    wall_time: float = 0.0
    rounds: List[RoundMetrics] = field(default_factory=list)

    def add_round(self, metrics: RoundMetrics) -> None:
        self.rounds.append(metrics)

    # ------------------------------------------------------------------
    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_items(self) -> int:
        """Total number of stream items processed across all rounds."""
        return sum(r.batch_items for r in self.rounds)

    @property
    def simulated_time(self) -> float:
        """Total simulated time of the run."""
        return sum(r.simulated_time for r in self.rounds)

    @property
    def total_insertions(self) -> int:
        return sum(r.total_insertions for r in self.rounds)

    @property
    def total_evicted(self) -> int:
        """Total candidates expired across all rounds (windowed runs)."""
        return sum(r.evicted_items for r in self.rounds)

    @property
    def max_insertions_per_pe(self) -> int:
        """Sum over rounds of the bottleneck per-PE insertions."""
        return sum(r.max_insertions for r in self.rounds)

    def throughput_total(self) -> float:
        """Processed items per second of simulated time (whole machine)."""
        t = self.simulated_time
        return self.total_items / t if t > 0 else float("inf")

    def throughput_per_pe(self) -> float:
        """Processed items per PE per second of simulated time (Figure 5)."""
        return self.throughput_total() / self.p

    def wall_throughput_total(self) -> float:
        """Processed items per second of *measured* wall-clock time."""
        return self.total_items / self.wall_time if self.wall_time > 0 else float("inf")

    def wall_throughput_per_pe(self) -> float:
        """Measured per-PE throughput (compare against ``p=1`` for speedup)."""
        return self.wall_throughput_total() / self.p

    def phase_times(self) -> Dict[str, PhaseTimes]:
        """Per-phase times summed over rounds."""
        totals: Dict[str, PhaseTimes] = {}
        for r in self.rounds:
            for phase, pt in r.phase_times.items():
                totals[phase] = totals.get(phase, PhaseTimes()) + pt
        return totals

    def phase_fractions(self) -> Dict[str, float]:
        """Fraction of total simulated time spent in each phase (Figure 6)."""
        totals = self.phase_times()
        grand = sum(pt.total for pt in totals.values())
        if grand <= 0:
            return {phase: 0.0 for phase in totals}
        return {phase: pt.total / grand for phase, pt in totals.items()}

    def mean_selection_depth(self) -> float:
        """Average selection recursion depth over the rounds that selected."""
        depths = [
            r.selection_stats.recursion_depth
            for r in self.rounds
            if r.selection_ran and r.selection_stats is not None
        ]
        return float(sum(depths)) / len(depths) if depths else 0.0

    def selection_time(self) -> float:
        """Total simulated time of the selection phase."""
        return self.phase_times().get("select", PhaseTimes()).total

    def as_dict(self) -> Dict[str, object]:
        return {
            "p": self.p,
            "k": self.k,
            "algorithm": self.algorithm,
            "store": self.store,
            "comm_backend": self.comm_backend,
            "rounds": self.num_rounds,
            "total_items": self.total_items,
            "simulated_time": self.simulated_time,
            "wall_time": self.wall_time,
            "throughput_per_pe": self.throughput_per_pe(),
            "wall_throughput_total": (self.wall_throughput_total() if self.wall_time > 0 else 0.0),
            "phase_fractions": self.phase_fractions(),
            "mean_selection_depth": self.mean_selection_depth(),
            "total_evicted": self.total_evicted,
        }

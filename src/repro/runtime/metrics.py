"""Per-round and per-run metrics of a sampling execution.

Runs under the simulated backend report *simulated* time derived from the
machine model; runs under the real multiprocess backend additionally carry
*measured wall-clock* time (:attr:`RunMetrics.wall_time`, filled in by
:class:`~repro.runtime.parallel.ParallelStreamingRun`) from which measured
throughput and speedup are derived.

The phase names follow Figure 6 of the paper:

* ``"insert"``  — local processing of the mini-batch (skip loop, key
  generation, insertions into the local reservoir / candidate buffer),
* ``"select"``  — establishing the new global threshold: the distributed
  selection for our algorithms, the sequential selection at the root for
  the centralized algorithm,
* ``"threshold"`` — the all-reduction that publishes the new threshold plus
  pruning the local reservoirs,
* ``"gather"``  — only used by the centralized algorithm: shipping the
  candidate items to the root,
* ``"expire"`` — only used by the windowed samplers: agreeing on the
  newest timestamp and evicting expired candidates from the buffers,
* ``"prepare"`` — only used by the pipelined drivers
  (:mod:`repro.pipeline`): generating the *next* round's batch and keys
  concurrently with the current round's selection.  Its time is **hidden**
  behind the other phases, so it is excluded from a round's total time,
* ``"overlap"`` — the *unhidden* remainder of ``"prepare"``: the time the
  coordinator had to wait for an in-flight prepare to finish before it
  could start the next round.  A perfectly overlapped round has
  ``overlap = 0``; a round that overlaps nothing pays the full prepare
  cost here.

Every phase time is split into a *local* component (bottleneck local work,
i.e. the maximum over PEs) and a *communication* component (from the cost
ledger), so the benchmarks can report both the Figure 6 composition and the
overall speedups/throughput.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.selection.base import SelectionStats

__all__ = ["PHASES", "OVERLAPPED_PHASES", "PhaseTimes", "RoundMetrics", "RunMetrics"]

#: canonical phase order used in reports
PHASES = ("prepare", "insert", "expire", "select", "threshold", "gather", "overlap")

#: phases whose time runs concurrently with the rest of the round and is
#: therefore excluded from round/run totals (their unhidden remainder is
#: accounted under "overlap")
OVERLAPPED_PHASES = ("prepare",)


@dataclass
class PhaseTimes:
    """Local and communication time of one phase."""

    local: float = 0.0
    comm: float = 0.0

    @property
    def total(self) -> float:
        return self.local + self.comm

    def __add__(self, other: "PhaseTimes") -> "PhaseTimes":
        return PhaseTimes(local=self.local + other.local, comm=self.comm + other.comm)


@dataclass
class RoundMetrics:
    """Metrics of one processed mini-batch round."""

    round_index: int
    batch_items: int
    items_seen_total: int
    sample_size: int
    threshold: Optional[float]
    phase_times: Dict[str, PhaseTimes] = field(default_factory=dict)
    insertions_per_pe: List[int] = field(default_factory=list)
    candidates_gathered: int = 0
    selection_stats: Optional[SelectionStats] = None
    selection_ran: bool = False
    #: windowed samplers: candidates expired out of the buffers this round
    evicted_items: int = 0
    #: windowed samplers: total buffered candidates (over-sample) after expiry
    window_buffer_items: int = 0
    #: windowed samplers: the amortised boundary check proved the old
    #: threshold still exact, so the full re-selection was skipped
    selection_skipped: bool = False
    #: pipelined runs: prepare time hidden behind the other phases this
    #: round (measured on the process backend, modeled on the simulator)
    overlap_saved_time: float = 0.0
    #: pipelined runs (relaxed mode): prepared candidates that the fresher
    #: threshold pruned again at ingest time (the staleness overhead)
    stale_extra_candidates: int = 0
    #: fault-tolerant runs: PEs respawned before this round was (re)played
    recovered_pes: List[int] = field(default_factory=list)

    @property
    def simulated_time(self) -> float:
        """Total simulated time of this round.

        Phases in :data:`OVERLAPPED_PHASES` run concurrently with the rest
        of the round, so they do not contribute; their unhidden remainder
        is the ``"overlap"`` phase, which does.
        """
        return sum(
            pt.total for name, pt in self.phase_times.items() if name not in OVERLAPPED_PHASES
        )

    @property
    def max_insertions(self) -> int:
        """Bottleneck number of insertions into any local reservoir."""
        return max(self.insertions_per_pe) if self.insertions_per_pe else 0

    @property
    def total_insertions(self) -> int:
        return sum(self.insertions_per_pe)

    def phase_total(self, phase: str) -> float:
        pt = self.phase_times.get(phase)
        return pt.total if pt else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view; :meth:`from_dict` inverts it losslessly.

        ``simulated_time`` / ``total_insertions`` / ``max_insertions`` are
        derived and only included for report convenience — ``from_dict``
        recomputes them from the stored fields.
        """
        return {
            "round": self.round_index,
            "batch_items": self.batch_items,
            "items_seen_total": self.items_seen_total,
            "sample_size": self.sample_size,
            "threshold": self.threshold,
            "simulated_time": self.simulated_time,
            "phases": {name: (pt.local, pt.comm) for name, pt in self.phase_times.items()},
            "insertions_per_pe": list(self.insertions_per_pe),
            "total_insertions": self.total_insertions,
            "max_insertions": self.max_insertions,
            "candidates_gathered": self.candidates_gathered,
            "selection_stats": (
                None if self.selection_stats is None else dataclasses.asdict(self.selection_stats)
            ),
            "selection_ran": self.selection_ran,
            "selection_skipped": self.selection_skipped,
            "evicted_items": self.evicted_items,
            "window_buffer_items": self.window_buffer_items,
            "overlap_saved_time": self.overlap_saved_time,
            "stale_extra_candidates": self.stale_extra_candidates,
            "recovered_pes": list(self.recovered_pes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RoundMetrics":
        """Rebuild a round from :meth:`as_dict` output, also after a JSON
        round trip (where the phase ``(local, comm)`` tuples come back as
        lists)."""
        stats = data.get("selection_stats")
        threshold = data.get("threshold")
        return cls(
            round_index=int(data["round"]),
            batch_items=int(data["batch_items"]),
            items_seen_total=int(data.get("items_seen_total", 0)),
            sample_size=int(data["sample_size"]),
            threshold=None if threshold is None else float(threshold),
            phase_times={
                name: PhaseTimes(local=float(pair[0]), comm=float(pair[1]))
                for name, pair in dict(data.get("phases", {})).items()
            },
            insertions_per_pe=[int(n) for n in data.get("insertions_per_pe", [])],
            candidates_gathered=int(data.get("candidates_gathered", 0)),
            selection_stats=None if stats is None else SelectionStats(**stats),
            selection_ran=bool(data.get("selection_ran", False)),
            evicted_items=int(data.get("evicted_items", 0)),
            window_buffer_items=int(data.get("window_buffer_items", 0)),
            selection_skipped=bool(data.get("selection_skipped", False)),
            overlap_saved_time=float(data.get("overlap_saved_time", 0.0)),
            stale_extra_candidates=int(data.get("stale_extra_candidates", 0)),
            recovered_pes=[int(r) for r in data.get("recovered_pes", [])],
        )


@dataclass
class RunMetrics:
    """Aggregated metrics of a full simulated run (many rounds)."""

    p: int
    k: int
    algorithm: str
    #: reservoir store backend the run used ("merge", "btree", or "" when unknown)
    store: str = ""
    #: communicator backend the run used ("sim", "process", or "" when unknown)
    comm_backend: str = ""
    #: kernel tier the run used ("numpy", "jit", or "" when unknown)
    kernel_tier: str = ""
    #: measured wall-clock seconds of the run (0 when only simulated time exists)
    wall_time: float = 0.0
    #: worker-death recoveries the run survived (process backend only)
    recoveries: int = 0
    #: watchdog stall detections (health monitoring enabled only)
    stalls: int = 0
    #: watchdog straggler detections (health monitoring enabled only)
    stragglers_detected: int = 0
    rounds: List[RoundMetrics] = field(default_factory=list)

    def add_round(self, metrics: RoundMetrics) -> None:
        self.rounds.append(metrics)

    # ------------------------------------------------------------------
    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_items(self) -> int:
        """Total number of stream items processed across all rounds."""
        return sum(r.batch_items for r in self.rounds)

    @property
    def simulated_time(self) -> float:
        """Total simulated time of the run."""
        return sum(r.simulated_time for r in self.rounds)

    @property
    def total_insertions(self) -> int:
        return sum(r.total_insertions for r in self.rounds)

    @property
    def total_evicted(self) -> int:
        """Total candidates expired across all rounds (windowed runs)."""
        return sum(r.evicted_items for r in self.rounds)

    @property
    def total_overlap_saved(self) -> float:
        """Prepare time hidden behind other phases, summed over rounds."""
        return sum(r.overlap_saved_time for r in self.rounds)

    @property
    def total_stale_extra_candidates(self) -> int:
        """Relaxed-pipeline candidates re-pruned at ingest, summed over rounds."""
        return sum(r.stale_extra_candidates for r in self.rounds)

    @property
    def total_selection_skips(self) -> int:
        """Rounds whose threshold re-selection the amortised check skipped."""
        return sum(1 for r in self.rounds if r.selection_skipped)

    def overlap_efficiency(self) -> float:
        """Fraction of total prepare time hidden behind other phases.

        1.0 means the pipeline fully hid next-round preparation; 0.0 means
        every prepare was paid for in full (or the run was not pipelined).
        """
        prepare = self.phase_times().get("prepare", PhaseTimes()).total
        return self.total_overlap_saved / prepare if prepare > 0 else 0.0

    @property
    def max_insertions_per_pe(self) -> int:
        """Sum over rounds of the bottleneck per-PE insertions."""
        return sum(r.max_insertions for r in self.rounds)

    def throughput_total(self) -> float:
        """Processed items per second of simulated time (whole machine).

        A zero-round (or zero-time) run reports ``0.0`` — not ``inf``,
        which every benchmark would serialise as the spec-invalid JSON
        token ``Infinity``.
        """
        t = self.simulated_time
        return self.total_items / t if t > 0 else 0.0

    def throughput_per_pe(self) -> float:
        """Processed items per PE per second of simulated time (Figure 5)."""
        return self.throughput_total() / self.p

    def wall_throughput_total(self) -> float:
        """Processed items per second of *measured* wall-clock time.

        ``0.0`` for runs without measured wall time (see
        :meth:`throughput_total` on why not ``inf``).
        """
        return self.total_items / self.wall_time if self.wall_time > 0 else 0.0

    def wall_throughput_per_pe(self) -> float:
        """Measured per-PE throughput (compare against ``p=1`` for speedup)."""
        return self.wall_throughput_total() / self.p

    def phase_times(self) -> Dict[str, PhaseTimes]:
        """Per-phase times summed over rounds."""
        totals: Dict[str, PhaseTimes] = {}
        for r in self.rounds:
            for phase, pt in r.phase_times.items():
                totals[phase] = totals.get(phase, PhaseTimes()) + pt
        return totals

    def phase_fractions(self) -> Dict[str, float]:
        """Fraction of total simulated time spent in each phase (Figure 6).

        Overlapped phases (``"prepare"``) are excluded: their time runs
        concurrently with the rest of the round and only their unhidden
        remainder (``"overlap"``) contributes to the round total.
        """
        totals = {
            phase: pt for phase, pt in self.phase_times().items() if phase not in OVERLAPPED_PHASES
        }
        grand = sum(pt.total for pt in totals.values())
        if grand <= 0:
            return {phase: 0.0 for phase in totals}
        return {phase: pt.total / grand for phase, pt in totals.items()}

    def mean_selection_depth(self) -> float:
        """Average selection recursion depth over the rounds that selected."""
        depths = [
            r.selection_stats.recursion_depth
            for r in self.rounds
            if r.selection_ran and r.selection_stats is not None
        ]
        return float(sum(depths)) / len(depths) if depths else 0.0

    def selection_time(self) -> float:
        """Total simulated time of the selection phase."""
        return self.phase_times().get("select", PhaseTimes()).total

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view; :meth:`from_dict` inverts it losslessly.

        ``"rounds"`` stays the round *count* (the key every benchmark
        consumer reads); the full per-round records travel under
        ``"round_details"``, from which :meth:`from_dict` rebuilds the
        identical :class:`RunMetrics` — also after a JSON round trip.
        """
        return {
            "p": self.p,
            "k": self.k,
            "algorithm": self.algorithm,
            "store": self.store,
            "comm_backend": self.comm_backend,
            "kernel_tier": self.kernel_tier,
            "rounds": self.num_rounds,
            "total_items": self.total_items,
            "simulated_time": self.simulated_time,
            "wall_time": self.wall_time,
            "throughput_per_pe": self.throughput_per_pe(),
            "wall_throughput_total": self.wall_throughput_total(),
            "phase_fractions": self.phase_fractions(),
            "mean_selection_depth": self.mean_selection_depth(),
            "total_evicted": self.total_evicted,
            "total_overlap_saved": self.total_overlap_saved,
            "total_stale_extra_candidates": self.total_stale_extra_candidates,
            "total_selection_skips": self.total_selection_skips,
            "overlap_efficiency": self.overlap_efficiency(),
            "recoveries": self.recoveries,
            "stalls": self.stalls,
            "stragglers_detected": self.stragglers_detected,
            "round_details": [r.as_dict() for r in self.rounds],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunMetrics":
        """Rebuild a run from :meth:`as_dict` output (JSON round-trip safe)."""
        return cls(
            p=int(data["p"]),
            k=int(data["k"]),
            algorithm=str(data["algorithm"]),
            store=str(data.get("store", "")),
            comm_backend=str(data.get("comm_backend", "")),
            kernel_tier=str(data.get("kernel_tier", "")),
            wall_time=float(data.get("wall_time", 0.0)),
            recoveries=int(data.get("recoveries", 0)),
            stalls=int(data.get("stalls", 0)),
            stragglers_detected=int(data.get("stragglers_detected", 0)),
            rounds=[RoundMetrics.from_dict(r) for r in data.get("round_details", [])],
        )

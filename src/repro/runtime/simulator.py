"""Driver that runs a distributed sampler over a stream and collects metrics.

The paper's experiments run each configuration for 30 seconds of wall-clock
time, completing as many mini-batches as possible, and report speedups and
per-PE throughput.  :class:`StreamingSimulation` mirrors this on top of the
*simulated* clock: it can either process a fixed number of rounds or keep
processing rounds until a given amount of simulated time has elapsed.
"""

from __future__ import annotations

from repro.obs.collect import resolve_trace
from repro.runtime.metrics import RoundMetrics, RunMetrics
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["StreamingSimulation"]


class StreamingSimulation:
    """Run a (distributed or centralized) sampler over a mini-batch stream.

    Parameters
    ----------
    sampler:
        Any object with ``process_round(batches) -> RoundMetrics``, ``p`` and
        ``sample_ids()`` — i.e. the samplers from :mod:`repro.core`.
    stream:
        A mini-batch stream with ``next_round()`` (see
        :class:`repro.stream.minibatch.MiniBatchStream`).
    warmup_rounds:
        Rounds processed before metric collection starts (their cost is not
        reported).  The paper's steady-state behaviour — few insertions per
        batch — only establishes itself after the first few batches.
    trace:
        ``True`` or a :class:`~repro.obs.collect.TraceCollector` enables
        span recording (see :mod:`repro.obs`); exposed as :attr:`trace`.
        Under the simulated backend the PEs run inline, so all spans share
        the coordinator clock and no calibration offsets apply.
    """

    def __init__(self, sampler, stream, *, warmup_rounds: int = 0, trace=None) -> None:
        if stream.p != sampler.p:
            raise ValueError(f"stream has {stream.p} PEs but the sampler has {sampler.p}")
        self.sampler = sampler
        self.stream = stream
        self.warmup_rounds = check_positive_int(warmup_rounds, "warmup_rounds", allow_zero=True)
        self._warmed_up = False
        self.trace = resolve_trace(trace)
        if self.trace is not None:
            self.trace.attach(sampler.comm, sampler._handle)
        self.metrics = RunMetrics(
            p=sampler.p,
            k=int(getattr(sampler, "k", 0)),
            algorithm=str(getattr(sampler, "algorithm_name", type(sampler).__name__)),
            store=str(getattr(sampler, "store", "")),
            comm_backend=str(getattr(getattr(sampler, "comm", None), "kind", "")),
            kernel_tier=str(getattr(sampler, "kernel_tier", "")),
        )

    # ------------------------------------------------------------------
    def _ensure_warmup(self) -> None:
        if self._warmed_up:
            return
        for _ in range(self.warmup_rounds):
            batches = self.stream.next_round()
            self.sampler.process_round(batches.batches)
        self._warmed_up = True

    def step(self) -> RoundMetrics:
        """Process one round and record its metrics."""
        self._ensure_warmup()
        batches = self.stream.next_round()
        with self.sampler.comm.tracer.span("round", cat="round", round=self.metrics.num_rounds):
            round_metrics = self.sampler.process_round(batches.batches)
        self.metrics.add_round(round_metrics)
        if self.trace is not None:
            self.trace.record_round(round_metrics)
        return round_metrics

    def run_rounds(self, rounds: int) -> RunMetrics:
        """Process a fixed number of rounds (after warm-up)."""
        for _ in range(check_positive_int(rounds, "rounds", allow_zero=True)):
            self.step()
        return self.metrics

    def run_for_simulated_time(
        self, duration: float, *, max_rounds: int = 10_000, min_rounds: int = 1
    ) -> RunMetrics:
        """Process rounds until ``duration`` seconds of simulated time elapsed.

        Mirrors the paper's fixed-wall-clock-duration runs: faster
        configurations complete more mini-batches.  At least ``min_rounds``
        and at most ``max_rounds`` rounds are processed.
        """
        check_positive(duration, "duration")
        check_positive_int(max_rounds, "max_rounds")
        rounds_done = 0
        while rounds_done < max_rounds and (
            rounds_done < min_rounds or self.metrics.simulated_time < duration
        ):
            self.step()
            rounds_done += 1
        return self.metrics

    # ------------------------------------------------------------------
    def sample_ids(self):
        return self.sampler.sample_ids()

    def communication_summary(self) -> dict:
        return self.sampler.comm.ledger.summary()

    def close(self) -> None:
        """Detach an attached trace collector (no other resources owned)."""
        if self.trace is not None:
            self.trace.finish()

#!/usr/bin/env python
"""Check that relative markdown links and file references resolve.

Scans README.md, ROADMAP.md, CHANGES.md and every page under docs/ for

* markdown links ``[text](target)`` pointing at local files/anchors, and
* backtick-quoted repo paths like ``benchmarks/bench_smoke.py``

and fails when a referenced file does not exist.  External (http/https/
mailto) links are not fetched — this is a repository-consistency check,
not a crawler.  Used by the CI ``docs`` job; pure standard library.

    python docs/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: files scanned for links (docs/ pages are discovered automatically)
TOP_LEVEL = ["README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md"]

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: backtick path like `benchmarks/bench_smoke.py` or `docs/api` — requires
#: a slash and an alphanumeric start so code spans don't false-positive
TICK_PATH = re.compile(r"`([A-Za-z0-9_.\-]+/[A-Za-z0-9_./\-]+?)/?`")


def iter_files():
    for name in TOP_LEVEL:
        path = REPO_ROOT / name
        if path.exists():
            yield path
    yield from sorted((REPO_ROOT / "docs").rglob("*.md"))


def check_md_link(source: Path, target: str) -> str | None:
    if target.startswith(("http://", "https://", "mailto:")):
        return None
    target = target.split("#", 1)[0]
    if not target:  # pure anchor
        return None
    resolved = (source.parent / target).resolve()
    if not resolved.exists():
        return f"{source.relative_to(REPO_ROOT)}: broken link -> {target}"
    return None


def check_tick_path(source: Path, target: str) -> str | None:
    # Only treat it as a repo path if the first segment exists as a
    # top-level directory; `repro.core.store.ReservoirStore`-style dotted
    # names and shell fragments fall through.
    first = target.split("/", 1)[0]
    if not (REPO_ROOT / first).is_dir():
        return None
    if any(ch in target for ch in "*{}$<>"):
        return None  # glob or placeholder, not a literal path
    if not (REPO_ROOT / target).exists():
        return f"{source.relative_to(REPO_ROOT)}: missing path -> {target}"
    return None


def main() -> int:
    failures: list[str] = []
    for path in iter_files():
        text = path.read_text()
        for match in MD_LINK.finditer(text):
            failure = check_md_link(path, match.group(1))
            if failure:
                failures.append(failure)
        for match in TICK_PATH.finditer(text):
            failure = check_tick_path(path, match.group(1))
            if failure:
                failures.append(failure)
    if failures:
        print("BROKEN CROSS-REFERENCES:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("all cross-references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Generate the markdown API reference from the package docstrings.

Walks every ``repro`` sub-package, documents all public symbols (package
``__all__`` plus each module's ``__all__``) with their signatures and
docstrings, and writes one markdown page per sub-package into
``docs/api/``.  Pure standard library — no sphinx/mkdocs plugins needed —
so the reference can be regenerated anywhere the package imports:

    PYTHONPATH=src python docs/gen_api_reference.py

The CI ``docs`` job regenerates the reference and fails when the committed
pages are stale; ``tests/docs/test_docs_tooling.py`` asserts that every
public symbol of ``repro.core`` and ``repro.network`` is covered.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

#: sub-packages documented, in navigation order
PACKAGES = [
    "repro.core",
    "repro.checkpoint",
    "repro.window",
    "repro.pipeline",
    "repro.network",
    "repro.obs",
    "repro.runtime",
    "repro.selection",
    "repro.summaries",
    "repro.stream",
    "repro.btree",
    "repro.analysis",
    "repro.utils",
]


def clean_doc(obj) -> str:
    doc = inspect.getdoc(obj)
    return doc.strip() if doc else "*Undocumented.*"


def first_line(obj) -> str:
    return clean_doc(obj).splitlines()[0]


def format_signature(name: str, obj) -> str:
    try:
        sig = inspect.signature(obj)
    except (ValueError, TypeError):
        return name
    # Drop annotations: they render noisily and their repr is less stable
    # across Python versions than names and defaults.
    params = [p.replace(annotation=inspect.Parameter.empty) for p in sig.parameters.values()]
    sig = sig.replace(parameters=params, return_annotation=inspect.Signature.empty)
    return f"{name}{sig}"


def document_class(name: str, cls) -> list:
    lines = [f"### `{name}`", ""]
    bases = [b.__name__ for b in cls.__bases__ if b is not object]
    if bases:
        lines.append(f"*Class* — inherits from {', '.join(f'`{b}`' for b in bases)}.")
    else:
        lines.append("*Class.*")
    lines += ["", clean_doc(cls), ""]
    members = []
    for attr_name, attr in sorted(vars(cls).items()):
        if attr_name.startswith("_"):
            continue
        if isinstance(attr, property):
            members.append((attr_name, f"`{attr_name}` *(property)* — {first_line(attr)}"))
        elif inspect.isfunction(attr):
            members.append(
                (attr_name, f"`{format_signature(attr_name, attr)}` — {first_line(attr)}")
            )
        elif isinstance(attr, (classmethod, staticmethod)):
            inner = attr.__func__
            members.append(
                (attr_name, f"`{format_signature(attr_name, inner)}` — {first_line(inner)}")
            )
    if members:
        lines.append("**Members:**")
        lines.append("")
        for _, rendered in members:
            lines.append(f"- {rendered}")
        lines.append("")
    return lines


def document_symbol(name: str, obj) -> list:
    if inspect.isclass(obj):
        return document_class(name, obj)
    if inspect.isfunction(obj):
        return [f"### `{format_signature(name, obj)}`", "", "*Function.*", "", clean_doc(obj), ""]
    rendered = repr(obj)
    if len(rendered) > 120:
        rendered = rendered[:117] + "..."
    return [f"### `{name}`", "", f"*Constant* — `{rendered}`", ""]


def iter_submodules(package):
    yield package.__name__, package
    for info in sorted(pkgutil.iter_modules(package.__path__), key=lambda i: i.name):
        if info.name.startswith("_"):
            continue
        yield f"{package.__name__}.{info.name}", importlib.import_module(
            f"{package.__name__}.{info.name}"
        )


def document_package(package_name: str) -> str:
    package = importlib.import_module(package_name)
    exported = list(getattr(package, "__all__", []))
    lines = [f"# `{package_name}`", "", clean_doc(package), ""]
    if exported:
        lines += ["## Package exports", ""]
        lines += [f"- `{name}`" for name in exported]
        lines.append("")

    documented = set()
    for module_name, module in iter_submodules(package):
        if module is package:
            symbols = []  # package docstring already shown; symbols live in modules
        else:
            symbols = [s for s in getattr(module, "__all__", []) if s not in documented]
            lines += [f"## Module `{module_name}`", "", first_line(module), ""]
        for symbol in symbols:
            obj = getattr(module, symbol)
            lines += document_symbol(symbol, obj)
            documented.add(symbol)

    # package-level exports re-exported from elsewhere (e.g. repro.core.api
    # symbols) that no submodule __all__ covered
    missing = [name for name in exported if name not in documented]
    if missing:
        lines += ["## Re-exported symbols", ""]
        for symbol in missing:
            lines += document_symbol(symbol, getattr(package, symbol))
    return "\n".join(lines).rstrip() + "\n"


def generate(output_dir: Path) -> list:
    output_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for package_name in PACKAGES:
        page = document_package(package_name)
        path = output_dir / f"{package_name.replace('.', '_')}.md"
        path.write_text(page)
        written.append(path)
    index = [
        "# API reference",
        "",
        "Generated from the package docstrings by `docs/gen_api_reference.py`",
        "(`PYTHONPATH=src python docs/gen_api_reference.py`).  Do not edit the",
        "pages in this directory by hand.",
        "",
    ]
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        index.append(
            f"- [`{package_name}`]({package_name.replace('.', '_')}.md) — {first_line(package)}"
        )
    index_path = output_dir / "index.md"
    index_path.write_text("\n".join(index) + "\n")
    written.append(index_path)
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=Path(__file__).parent / "api",
        help="directory the markdown pages are written to (default: docs/api)",
    )
    args = parser.parse_args(argv)
    written = generate(args.output)
    print(f"wrote {len(written)} pages to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Spark-Streaming-style mini-batch analytics with a drifting workload.

The paper's mini-batch model is a generalisation of discretized streams
(D-Streams) as used by Spark Streaming: every few hundred milliseconds a new
mini-batch of events materialises on each of the ``p`` workers, and the
analytics layer keeps a bounded, always-up-to-date weighted sample of all
events seen so far (e.g. to drive approximate dashboards or downsampled
training sets).

This example simulates such a pipeline:

* 32 workers receive event batches whose weight distribution *drifts* over
  time (the paper's skewed preliminary-experiment input: normally
  distributed weights whose mean grows with the round and the worker rank),
* a distributed weighted reservoir of 5,000 events is maintained with
  Algorithm 1,
* after every "window" of rounds the pipeline inspects the sample: how fresh
  is it (fraction of sampled events from the latest window) and how heavy
  (mean weight), demonstrating that the sample tracks the drifting stream,
* finally the run is repeated with the variable-size sampler (Section 4.4)
  to show how much selection work the band buys back.

Run with::

    python examples/minibatch_analytics.py
"""

from __future__ import annotations

import numpy as np

from repro import MachineSpec, SimComm, make_distributed_sampler
from repro.stream import MiniBatchStream, NormalDriftWeightGenerator

P_WORKERS = 32
SAMPLE_SIZE = 5_000
BATCH_PER_WORKER = 4_000
WINDOWS = 4
ROUNDS_PER_WINDOW = 5


def run_pipeline(algorithm: str, *, k_hi: int | None = None, seed: int = 11):
    machine = MachineSpec.forhlr_like()
    comm = SimComm(P_WORKERS, cost=machine.comm)
    sampler = make_distributed_sampler(
        algorithm, SAMPLE_SIZE, comm, machine=machine, seed=seed, k_hi=k_hi
    )
    weights = NormalDriftWeightGenerator(base_mean=50.0, std=15.0, round_drift=8.0, pe_drift=0.5)
    stream = MiniBatchStream(P_WORKERS, BATCH_PER_WORKER, weights=weights, seed=seed + 1)

    print(f"\n--- algorithm: {algorithm} ---")
    window_start_id = 0
    selection_rounds = 0
    simulated_time = 0.0
    for window in range(WINDOWS):
        for _ in range(ROUNDS_PER_WINDOW):
            round_batches = stream.next_round()
            metrics = sampler.process_round(round_batches.batches)
            simulated_time += metrics.simulated_time
            selection_rounds += int(metrics.selection_ran)
        # inspect the sample at the end of the window
        sample_ids = sampler.sample_ids()
        real_ids = sample_ids[sample_ids >= 0]
        fresh = np.mean(real_ids >= window_start_id) if len(real_ids) else 0.0
        items_in_window = P_WORKERS * BATCH_PER_WORKER * ROUNDS_PER_WINDOW
        print(
            f"window {window}: items seen {sampler.items_seen:>9,} | "
            f"sample {sampler.sample_size():>5,} | "
            f"from this window {fresh * 100:5.1f} % "
            f"(uniform share would be {items_in_window / sampler.items_seen * 100:5.1f} %)"
        )
        window_start_id = stream.items_emitted
    summary = comm.ledger.summary()
    print(
        f"selections run: {selection_rounds}/{WINDOWS * ROUNDS_PER_WINDOW} rounds | "
        f"simulated time {simulated_time * 1e3:.2f} ms | "
        f"comm {summary['messages']:,} msgs / {summary['words']:,.0f} words"
    )
    return simulated_time, selection_rounds, summary


def main() -> None:
    print("=" * 72)
    print(
        f"Mini-batch analytics: {P_WORKERS} workers, {BATCH_PER_WORKER:,} events/worker/round, "
        f"k = {SAMPLE_SIZE:,}, drifting weights"
    )
    print("=" * 72)

    fixed_time, fixed_selections, _ = run_pipeline("ours-8")
    variable_time, variable_selections, _ = run_pipeline(
        "ours-variable", k_hi=2 * SAMPLE_SIZE
    )
    gather_time, _, _ = run_pipeline("gather")

    print("\n" + "-" * 72)
    print("Summary")
    print(f"  fixed-size sampler (ours-8)   : {fixed_time * 1e3:8.2f} ms simulated, "
          f"{fixed_selections} selections")
    print(f"  variable-size sampler (4.4)   : {variable_time * 1e3:8.2f} ms simulated, "
          f"{variable_selections} selections  <- selections only when the band overflows")
    print(f"  centralized baseline (gather) : {gather_time * 1e3:8.2f} ms simulated")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Asynchronous double-buffered ingestion (the ``repro.pipeline`` subsystem).

The lock-step drivers serialise every round's insert phase with its
selection collectives; the pipelined driver overlaps them — while the
coordinator finishes round *t*'s selection, the workers already prepare
round *t+1*'s mini-batch.  This example demonstrates:

1. **Strict mode is free correctness-wise** — byte-identical samples to
   the lock-step :class:`repro.runtime.ParallelStreamingRun` for the same
   seed, with the next batch materialised in the background.
2. **Relaxed mode** — key generation overlapped under a one-round-stale
   threshold, a bounded number of extra candidates reconciled at ingest
   (``stale_extra_candidates``), overlap efficiency reported per run.
3. **Adaptive batch sizing** — ``batch_size="auto"`` steers the round
   latency toward a target instead of relying on a hand-picked size.

A longer walk-through lives in ``docs/async-pipeline.md``.  Run with::

    python examples/async_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import PipelinedSamplingRun
from repro.runtime import ParallelStreamingRun

K = 1_000
P = 4
BATCH = 32_768
ROUNDS = 8
SEED = 42


def strict_mode_is_byte_identical() -> None:
    print("=" * 72)
    print("1. Strict pipeline: overlap without changing a single sample byte")
    print("=" * 72)

    with ParallelStreamingRun(
        "ours-8", k=K, p=P, comm="process", batch_size=BATCH, seed=SEED
    ) as lockstep:
        lockstep.run_rounds(ROUNDS)
        lockstep_ids = np.sort(lockstep.sample_ids())
        lockstep_throughput = lockstep.metrics.wall_throughput_total()

    with PipelinedSamplingRun(
        "ours-8", k=K, p=P, comm="process", pipeline="strict", batch_size=BATCH, seed=SEED
    ) as strict:
        metrics = strict.run_rounds(ROUNDS)
        strict_ids = np.sort(strict.sample_ids())

    assert np.array_equal(lockstep_ids, strict_ids)
    print(f"lock-step throughput: {lockstep_throughput:>12,.0f} items/s")
    print(f"strict    throughput: {metrics.wall_throughput_total():>12,.0f} items/s")
    print(f"samples byte-identical: True ({len(strict_ids)} ids)")
    print(f"prepare time hidden behind selection: {metrics.total_overlap_saved * 1e3:.1f} ms\n")


def relaxed_mode_trades_staleness_for_overlap() -> None:
    print("=" * 72)
    print("2. Relaxed pipeline: stale-threshold filtering, reconciled at ingest")
    print("=" * 72)

    with PipelinedSamplingRun(
        "ours-8", k=K, p=P, comm="process", pipeline="relaxed", batch_size=BATCH, seed=SEED
    ) as relaxed:
        metrics = relaxed.run_rounds(ROUNDS)
        sample = relaxed.sample_ids()

    print(f"relaxed throughput:  {metrics.wall_throughput_total():>12,.0f} items/s")
    print(f"sample size:         {len(sample)} (still exactly k)")
    print(f"overlap efficiency:  {metrics.overlap_efficiency():.2f} "
          "(fraction of prepare time hidden)")
    print(f"stale extra candidates reconciled: {metrics.total_stale_extra_candidates} "
          f"over {metrics.num_rounds} rounds")
    per_round = [r.stale_extra_candidates for r in metrics.rounds]
    print(f"per round: {per_round}\n")


def auto_batch_sizing() -> None:
    print("=" * 72)
    print("3. batch_size='auto': steer the round latency to a target")
    print("=" * 72)

    with PipelinedSamplingRun(
        "ours-8", k=K, p=P, comm="process", pipeline="relaxed",
        batch_size="auto", target_round_time=0.01, seed=SEED,
    ) as run:
        for _ in range(10):
            run.step()
        print(f"final batch size:    {run.batch_size} (started at 4096)")
        print(f"size adjustments:    {run.autotuner.adjustments}")
        print(f"mean round latency:  "
              f"{run.metrics.wall_time / max(run.metrics.num_rounds, 1) * 1e3:.1f} ms "
              f"(target 10 ms)")


if __name__ == "__main__":
    strict_mode_is_byte_identical()
    relaxed_mode_trades_staleness_for_overlap()
    auto_batch_sizing()

#!/usr/bin/env python
"""Sliding-window and time-decayed reservoir sampling.

Production stream systems usually want *recency*: sample from the last
``W`` items, or weight items down exponentially as they age.  This example
mirrors ``examples/quickstart.py`` for the windowed modes:

1. :class:`repro.ReservoirSampler` with ``window=W`` — a sequential sample
   over the last ``W`` items only, demonstrated on a bursty stream whose
   old bursts an unbounded sampler would never forget.
2. :class:`repro.ReservoirSampler` with ``decay=lam`` — exponential
   time-decay: item ``i`` is sampled proportionally to ``w_i * lam^age``.
3. :class:`repro.DistributedSamplingRun` with ``window=W`` — the
   distributed sliding-window sampler: per-PE candidate buffers, timestamp
   eviction, and a re-selected global sample boundary each round.

A longer walk-through lives in ``docs/windowed-sampling.md``.  Run with::

    python examples/sliding_window.py
"""

from __future__ import annotations

import numpy as np

from repro import DistributedSamplingRun, ReservoirSampler


def sliding_window_quickstart() -> None:
    print("=" * 72)
    print("1. Sliding window: sample only the last W items")
    print("=" * 72)

    n_items, window, k = 100_000, 10_000, 500
    # a bursty stream: heavy items early on, ordinary items afterwards
    weights = np.ones(n_items)
    weights[:20_000] *= 50.0  # the (long-gone) burst

    unbounded = ReservoirSampler(k=k, weighted=True, seed=7, store="merge")
    windowed = ReservoirSampler(k=k, weighted=True, seed=7, window=window)
    for start in range(0, n_items, 10_000):
        stop = start + 10_000
        ids = np.arange(start, stop)
        unbounded.feed(ids, weights[start:stop])
        windowed.feed(ids, weights[start:stop])

    stale = int((unbounded.sample_ids() < n_items - window).sum())
    print(f"items seen                : {windowed.items_seen:,}")
    print(f"window                    : last {window:,} items")
    print(f"sample size               : {len(windowed.sample_ids())}")
    print(f"stale ids, unbounded      : {stale} of {k}  <- stuck on the old burst")
    print(f"stale ids, windowed       : {int((windowed.sample_ids() < n_items - window).sum())}")
    print(f"candidate buffer          : {windowed.buffer_size} items "
          f"(~ k * ln(W/k), not W)")
    print()


def decayed_quickstart() -> None:
    print("=" * 72)
    print("2. Exponential time decay: weight ~ w * lambda^age")
    print("=" * 72)

    n_items, k, lam = 50_000, 500, 0.9995
    sampler = ReservoirSampler(k=k, weighted=False, seed=3, decay=lam)
    for start in range(0, n_items, 10_000):
        sampler.feed(np.arange(start, start + 10_000))

    sample = sampler.sample_ids()
    half_life = np.log(0.5) / np.log(lam)
    print(f"items seen                : {sampler.items_seen:,}")
    print(f"decay factor              : {lam} (half-life ~ {half_life:,.0f} items)")
    print(f"sample size               : {len(sample)}")
    print(f"mean sampled arrival index: {sample.mean():,.0f} of {n_items:,} "
          "<- biased towards recent")
    print(f"oldest sampled item       : {sample.min():,}")
    print()


def distributed_window_quickstart() -> None:
    print("=" * 72)
    print("3. Distributed sliding window (simulated, p = 16 PEs)")
    print("=" * 72)

    run = DistributedSamplingRun(
        "ours-8",          # 8-pivot selection re-establishes the boundary
        k=1_000,
        p=16,
        batch_size=2_000,  # items per PE per mini-batch
        window=64_000,     # last 64k items across all PEs stay live
        seed=3,
    )
    metrics = run.run(rounds=10)

    emitted = metrics.total_items
    sample = run.sample_ids()
    print(f"rounds processed    : {metrics.num_rounds}")
    print(f"items processed     : {emitted:,}")
    print(f"sample size         : {len(sample):,}")
    print(f"oldest sampled item : {sample.min():,} (window floor: {emitted - 64_000:,})")
    print(f"candidates evicted  : {metrics.total_evicted:,}")
    print(f"simulated time      : {metrics.simulated_time * 1e3:.3f} ms")
    print("running-time composition (incl. the window's expire phase):")
    for phase, fraction in sorted(metrics.phase_fractions().items()):
        print(f"    {phase:<10s} {fraction * 100:5.1f} %")
    print("(comm='process' with the same seed yields byte-identical samples)")
    print()


if __name__ == "__main__":
    sliding_window_quickstart()
    decayed_quickstart()
    distributed_window_quickstart()

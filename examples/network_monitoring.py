#!/usr/bin/env python
"""Distributed network monitoring: heavy-hitter flows via weighted sampling.

Scenario (one of the applications motivating the paper): ``p`` ingress
routers each observe a stream of flow records.  Every flow record carries a
byte count, and the monitoring system wants to maintain, at all times, a
weighted sample of the traffic — flows are picked with probability
proportional to their bytes — so that heavy hitters can be estimated
without ever storing the full traffic.

This example

* builds a synthetic flow stream with a heavy-tailed (Zipf-like) byte
  distribution spread unevenly over 16 monitors,
* maintains a distributed weighted reservoir sample with Algorithm 1
  ("ours-8"), and
* compares the communication volume against the centralized gathering
  baseline, illustrating why a coordinator-free design matters when the
  monitors are connected by a constrained network.

Run with::

    python examples/network_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import MachineSpec, SimComm, make_distributed_sampler
from repro.stream import ItemBatch, ZipfWeightGenerator, partition_weighted_shares

P_MONITORS = 16
SAMPLE_SIZE = 2_000
FLOWS_PER_ROUND = 40_000
ROUNDS = 12
HEAVY_HITTERS = 20


def synthesize_round(rng: np.random.Generator, round_index: int, next_id: int):
    """One round of flow records: heavy-tailed sizes, skewed monitor load."""
    sizes = ZipfWeightGenerator(exponent=1.6, scale=1.0)(FLOWS_PER_ROUND, rng)
    # a few designated "elephant" flows re-appear every round with huge volume
    elephant_ids = np.arange(HEAVY_HITTERS)
    elephant_sizes = rng.uniform(2_000.0, 5_000.0, size=HEAVY_HITTERS)
    ids = np.concatenate([elephant_ids, np.arange(next_id, next_id + FLOWS_PER_ROUND)])
    sizes = np.concatenate([elephant_sizes, sizes])
    batch = ItemBatch(ids=ids, weights=sizes)
    # monitors see very different traffic volumes (e.g. backbone vs edge)
    shares = np.linspace(1.0, 6.0, P_MONITORS)
    parts = partition_weighted_shares(batch, shares, rng)
    return parts, next_id + FLOWS_PER_ROUND, float(sizes.sum())


def run_monitoring(algorithm: str, seed: int = 1):
    machine = MachineSpec.forhlr_like()
    comm = SimComm(P_MONITORS, cost=machine.comm)
    sampler = make_distributed_sampler(algorithm, SAMPLE_SIZE, comm, machine=machine, seed=seed)
    rng = np.random.default_rng(seed + 100)
    next_id = 1_000_000
    total_bytes = 0.0
    simulated_time = 0.0
    for round_index in range(ROUNDS):
        parts, next_id, round_bytes = synthesize_round(rng, round_index, next_id)
        metrics = sampler.process_round(parts)
        total_bytes += round_bytes
        simulated_time += metrics.simulated_time
    return sampler, comm, total_bytes, simulated_time


def heavy_hitter_recall(sampler) -> float:
    """Fraction of the designated elephant flows present in the sample."""
    sample_ids = set(sampler.sample_ids().tolist())
    return sum(1 for flow in range(HEAVY_HITTERS) if flow in sample_ids) / HEAVY_HITTERS


def main() -> None:
    print("=" * 72)
    print(f"Distributed network monitoring: {P_MONITORS} monitors, "
          f"{ROUNDS} rounds x {FLOWS_PER_ROUND:,} flows")
    print("=" * 72)

    results = {}
    for algorithm in ("ours-8", "gather"):
        sampler, comm, total_bytes, simulated_time = run_monitoring(algorithm)
        recall = heavy_hitter_recall(sampler)
        results[algorithm] = (sampler, comm, simulated_time, recall)
        print(f"\nalgorithm            : {algorithm}")
        print(f"flows observed       : {sampler.items_seen:,}")
        print(f"bytes observed       : {sampler.total_weight:,.0f}")
        print(f"sample size          : {sampler.sample_size():,}")
        print(f"elephant-flow recall : {recall * 100:5.1f} %  ({HEAVY_HITTERS} designated elephants)")
        print(f"simulated time       : {simulated_time * 1e3:.2f} ms")
        summary = comm.ledger.summary()
        print(f"communication        : {summary['messages']:,} messages, "
              f"{summary['words']:,.0f} words")
        print("    per phase (s)    :",
              {phase: round(t, 6) for phase, t in sorted(summary['time_by_phase'].items())})

    ours_words = results["ours-8"][1].ledger.total_words
    gather_words = results["gather"][1].ledger.total_words
    print("\n" + "-" * 72)
    print(f"communication volume  gather / ours-8 : {gather_words / max(ours_words, 1):.1f}x")
    print("The coordinator-free sampler ships only counts, pivots and thresholds;")
    print("the centralized baseline ships every candidate flow to the root.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Comparing the distributed selection algorithms (paper Section 3.3).

The threshold re-establishment of Algorithm 1 is "just" a distributed
selection: find the key with global rank ``k`` over the union of the local
reservoirs.  The paper discusses several algorithms for this step; this
example runs all of them on the same distributed key set and reports

* recursion depth (the quantity behind the paper's Section 6.3 numbers),
* number of collective operations,
* simulated communication time under the alpha/beta model, and
* the number of keys that had to be moved to a single PE (the reason the
  centralized approaches stop scaling).

Run with::

    python examples/selection_playground.py
"""

from __future__ import annotations

import numpy as np

from repro import SimComm
from repro.analysis import format_table
from repro.selection import (
    AmsSelection,
    ArrayKeySet,
    MultiPivotSelection,
    SampledSelection,
    SinglePivotSelection,
    UnsortedSelection,
)
from repro.utils import spawn_generators

P = 256          # simulated PEs
PER_PE = 2_000   # candidate keys per PE
K = 50_000       # rank to select
REPETITIONS = 5


def main() -> None:
    print("=" * 72)
    print(f"Distributed selection of rank k={K:,} over {P} PEs x {PER_PE:,} keys")
    print("=" * 72)

    algorithms = {
        "single pivot (3.3.3)": SinglePivotSelection(),
        "8 pivots (3.3.2+3.3.3)": MultiPivotSelection(8),
        "amsSelect band k..1.5k (3.3.2)": AmsSelection(2),
        "sampled two-pivot (3.3.1)": SampledSelection(),
        "unsorted fallback (3.3.4)": UnsortedSelection(),
    }

    rows = []
    rng = np.random.default_rng(0)
    for label, algorithm in algorithms.items():
        depths, collectives, comm_times, gathered = [], [], [], []
        for rep in range(REPETITIONS):
            arrays = [rng.random(PER_PE) for _ in range(P)]
            keyset = ArrayKeySet(arrays, assume_sorted=False)
            comm = SimComm(P)
            rngs = spawn_generators(rep, P)
            if isinstance(algorithm, AmsSelection):
                result = algorithm.select_range(keyset, K, int(1.5 * K), comm, rngs)
            else:
                result = algorithm.select(keyset, K, comm, rngs)
            # verify against ground truth
            truth = np.sort(np.concatenate(arrays))[K - 1]
            rank = int(np.searchsorted(np.sort(np.concatenate(arrays)), result.key, side="right"))
            assert (abs(result.key - truth) < 1e-12) or (K <= rank <= int(1.5 * K)), label
            depths.append(result.stats.recursion_depth)
            collectives.append(result.stats.collective_calls)
            comm_times.append(comm.ledger.total_time)
            gathered.append(result.stats.final_gather_items)
        rows.append(
            [
                label,
                float(np.mean(depths)),
                float(np.mean(collectives)),
                float(np.mean(comm_times) * 1e6),
                float(np.mean(gathered)),
            ]
        )

    print(
        format_table(
            ["algorithm", "mean depth", "collectives", "comm time (us)", "keys gathered"],
            rows,
            precision=2,
        )
    )
    print()
    print("Takeaways (matching the paper):")
    print(" * multiple pivots cut the recursion depth roughly in half or better;")
    print(" * the banded amsSelect needs only a couple of rounds;")
    print(" * the sampled/unsorted variants trade recursion depth for moving more keys.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: weighted reservoir sampling, sequential and distributed.

This example shows the two entry points of the library in a couple of
minutes of reading:

1. :class:`repro.ReservoirSampler` — a sequential weighted reservoir sampler
   (paper Section 4.1) fed from a plain stream of (id, weight) items.
2. :class:`repro.DistributedSamplingRun` — the fully distributed mini-batch
   algorithm (paper Algorithm 1) executed on a simulated machine, including
   the communication-cost accounting that the paper's evaluation is about.
3. :class:`repro.runtime.ParallelStreamingRun` — the same algorithm executed
   on *real* worker processes (one per PE), reporting measured wall-clock
   throughput.

A longer walk-through lives in ``docs/quickstart.md``.  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DistributedSamplingRun, ReservoirSampler
from repro.runtime import ParallelStreamingRun


def sequential_quickstart() -> None:
    print("=" * 72)
    print("1. Sequential weighted reservoir sampling")
    print("=" * 72)

    n_items = 100_000
    # a stream where item i has weight proportional to (i % 100) + 1
    weights = (np.arange(n_items) % 100 + 1).astype(float)

    sampler = ReservoirSampler(k=500, weighted=True, seed=7)
    # feed the stream in chunks, as it would arrive in practice
    for start in range(0, n_items, 10_000):
        stop = start + 10_000
        sampler.feed(np.arange(start, stop), weights[start:stop])

    sample = sampler.sample_ids()
    print(f"items seen          : {sampler.items_seen:,}")
    print(f"sample size         : {len(sample)}")
    print(f"current threshold   : {sampler.threshold:.3e}")
    # heavier items (larger i % 100) should be over-represented
    mean_weight_sampled = weights[sample].mean()
    mean_weight_stream = weights.mean()
    print(f"mean weight (stream): {mean_weight_stream:6.2f}")
    print(f"mean weight (sample): {mean_weight_sampled:6.2f}  <- biased towards heavy items")
    print()


def distributed_quickstart() -> None:
    print("=" * 72)
    print("2. Distributed mini-batch reservoir sampling (simulated, p = 64 PEs)")
    print("=" * 72)

    run = DistributedSamplingRun(
        "ours-8",          # Algorithm 1 with 8-pivot selection
        k=1_000,           # sample size
        p=64,              # simulated processing elements
        batch_size=2_000,  # items per PE per mini-batch
        seed=3,
    )
    metrics = run.run(rounds=10)

    print(f"rounds processed    : {metrics.num_rounds}")
    print(f"items processed     : {metrics.total_items:,}")
    print(f"sample size         : {len(run.sample_ids()):,}")
    print(f"simulated time      : {metrics.simulated_time * 1e3:.3f} ms")
    print(f"throughput per PE   : {metrics.throughput_per_pe():,.0f} items/s")
    print(f"mean selection depth: {metrics.mean_selection_depth():.2f} pivot rounds")
    print("running-time composition (paper Figure 6 phases):")
    for phase, fraction in sorted(metrics.phase_fractions().items()):
        print(f"    {phase:<10s} {fraction * 100:5.1f} %")
    comm = run.communication_summary()
    print(f"communication       : {comm['messages']:,} messages, "
          f"{comm['words']:,.0f} machine words")
    print()


def parallel_quickstart() -> None:
    print("=" * 72)
    print("3. Real multiprocess execution (p = 2 worker processes)")
    print("=" * 72)

    with ParallelStreamingRun(
        "ours-8",           # same algorithm as above ...
        k=1_000,
        p=2,                # ... but on 2 real worker processes
        comm="process",
        batch_size=16_384,  # each worker generates + ingests its own shard
        warmup_rounds=2,
        seed=3,
    ) as run:
        metrics = run.run_rounds(5)
        sample_size = len(run.sample_ids())

    print(f"rounds processed    : {metrics.num_rounds}")
    print(f"items processed     : {metrics.total_items:,}")
    print(f"sample size         : {sample_size:,}")
    print(f"measured wall time  : {metrics.wall_time * 1e3:.1f} ms")
    print(f"measured throughput : {metrics.wall_throughput_total():,.0f} items/s")
    print("(same seed + comm='sim' would yield byte-identical samples)")
    print()


if __name__ == "__main__":
    sequential_quickstart()
    distributed_quickstart()
    parallel_quickstart()

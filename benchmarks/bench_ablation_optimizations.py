"""Ablations of the design choices called out in DESIGN.md.

Three questions, answered with the simulated cost model on a mid-size
configuration:

1. **Section-5 local thresholding** — how many first-batch insertions (and
   how much simulated time) does the local-threshold policy save when the
   first mini-batch is much larger than ``k``?
2. **Local reservoir store backend** — B+ tree (paper) vs. the vectorized
   sorted-array merge store: identical samples, different constant factors.
3. **Number of selection pivots** — selection depth and simulated selection
   time for d in {1, 2, 4, 8, 16} (the paper settles on d = 8).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.analysis.experiments import run_configuration
from repro.core import DistributedReservoirSampler
from repro.network import SimComm
from repro.runtime import MachineSpec
from repro.selection import PivotSelection
from repro.stream import MiniBatchStream

from harness import scaling_config, write_result


def machine_for(scale: str) -> MachineSpec:
    return scaling_config(scale).machine_spec()


@pytest.mark.benchmark(group="ablation")
def test_ablation_local_thresholding(benchmark, scale):
    """First-batch local thresholding (Section 5) on vs. off."""
    p, k, first_batch = 8, 50, 20_000
    machine = machine_for(scale)

    def run(local_thresholding: bool):
        comm = SimComm(p, cost=machine.comm)
        sampler = DistributedReservoirSampler(
            k, comm, machine=machine, seed=3, local_thresholding=local_thresholding
        )
        stream = MiniBatchStream(p, first_batch, seed=4)
        metrics = sampler.process_round(stream.next_round().batches)
        return metrics, sampler

    (with_policy, sampler_a) = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    without_policy, sampler_b = run(False)

    rows = [
        ["enabled", with_policy.max_insertions, with_policy.total_insertions,
         with_policy.phase_total("insert") * 1e6, sampler_a.sample_size()],
        ["disabled", without_policy.max_insertions, without_policy.total_insertions,
         without_policy.phase_total("insert") * 1e6, sampler_b.sample_size()],
    ]
    write_result(
        "ablation_local_thresholding.txt",
        f"Section-5 local thresholding, first batch of {first_batch} items/PE, k = {k}\n"
        + format_table(
            ["policy", "max insert/PE", "total inserts", "insert time (us)", "sample size"], rows
        ),
    )
    # both give a correct sample, the policy saves insertions and time
    assert sampler_a.sample_size() == sampler_b.sample_size() == k
    assert with_policy.total_insertions < without_policy.total_insertions
    assert with_policy.phase_total("insert") <= without_policy.phase_total("insert") * 1.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_reservoir_backend(benchmark, scale):
    """B+ tree vs. merge-store local reservoirs (wall clock + same sample)."""
    p, k, batch, rounds = 8, 500, 2_000, 5

    def run(store: str):
        comm = SimComm(p)
        sampler = DistributedReservoirSampler(k, comm, seed=5, store=store)
        stream = MiniBatchStream(p, batch, seed=6)
        for _ in range(rounds):
            sampler.process_round(stream.next_round().batches)
        return sampler

    import time

    samplers = {}
    wall = {}
    for store in ("btree", "merge"):
        start = time.perf_counter()
        samplers[store] = run(store)
        wall[store] = time.perf_counter() - start
    benchmark.pedantic(run, args=("btree",), rounds=1, iterations=1)

    rows = [[store, wall[store] * 1e3, samplers[store].sample_size()] for store in samplers]
    write_result(
        "ablation_reservoir_backend.txt",
        f"Local reservoir store, p = {p}, k = {k}, {rounds} rounds of {batch} items/PE\n"
        + format_table(["store", "wall clock (ms)", "sample size"], rows),
    )
    # identical random streams => identical samples regardless of store
    a = sorted(samplers["btree"].sample_ids().tolist())
    b = sorted(samplers["merge"].sample_ids().tolist())
    assert a == b


@pytest.mark.benchmark(group="ablation")
def test_ablation_pivot_count(benchmark, scale):
    """Selection depth / simulated selection time as a function of d."""
    machine = machine_for(scale)
    p, k, batch, rounds = 64, 2_000, 1_000, 4
    pivot_counts = [1, 2, 4, 8, 16]

    def run_with_pivots(d: int):
        return run_configuration(
            "ours" if d == 1 else f"ours-{d}",
            p=p,
            k=k,
            batch_per_pe=batch,
            rounds=rounds,
            warmup_rounds=1,
            prewarm_items=50 * p * batch,
            machine=machine,
            seed=11,
        )

    results = {}
    for d in pivot_counts:
        results[d] = run_with_pivots(d)
    benchmark.pedantic(run_with_pivots, args=(8,), rounds=1, iterations=1)

    rows = [
        [d, results[d].mean_selection_depth(), results[d].selection_time() * 1e6,
         results[d].simulated_time * 1e3]
        for d in pivot_counts
    ]
    write_result(
        "ablation_pivot_count.txt",
        f"Selection pivots d, p = {p}, k = {k}, steady state\n"
        + format_table(["pivots d", "mean depth", "select time (us)", "total time (ms)"], rows),
    )
    # more pivots => no deeper recursions; 8 pivots clearly beat 1
    assert results[8].mean_selection_depth() < results[1].mean_selection_depth()
    assert results[16].mean_selection_depth() <= results[1].mean_selection_depth()

"""Figure 3 — weak scaling speedups.

Paper setup: per-PE batch sizes b in {1e4, 1e5, 1e6}, sample sizes k in
{1e3, 1e4, 1e5}, node counts 1..256 (20 PEs per node); speedups of ``ours``,
``ours-8`` and ``gather`` relative to ``ours`` on one node for the same k.

Reproduced here with the scaled sweep of EXPERIMENTS.md (same structure:
one table per per-PE batch size, one column per algorithm/k combination).

Expected qualitative shape (checked by assertions):
* speedups grow with the node count for all algorithms;
* ``gather`` is competitive only for the smallest sample size and falls
  behind for the largest one;
* ``ours-8`` is at least as good as ``ours``, with the advantage showing at
  the largest sample size.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_series_table

from harness import weak_scaling_result, write_result


@pytest.mark.benchmark(group="fig3-weak-scaling")
def test_fig3_weak_scaling(benchmark, scale, config):
    result = benchmark.pedantic(weak_scaling_result, args=(scale,), rounds=1, iterations=1)

    sections = []
    for batch in config.weak_batch_sizes:
        series = {}
        for k in config.sample_sizes:
            for algorithm in config.algorithms:
                label = f"{algorithm} k={k}"
                series[label] = result.speedups(algorithm, k, batch)
        table = format_series_table(series, x_label="nodes")
        sections.append(f"Weak scaling, batch size b = {batch} items per PE\n{table}")
    write_result("fig3_weak_scaling.txt", "\n\n".join(sections))


    if scale == "smoke":
        # The smoke sweep is too small for the paper's crossovers (gather is
        # legitimately competitive for tiny sample sizes); the qualitative
        # shape checks below are only meaningful at default/full scale.
        return

    # ---- qualitative shape checks -------------------------------------
    nodes_max = max(config.node_counts)
    k_small, k_large = min(config.sample_sizes), max(config.sample_sizes)
    batch = max(config.weak_batch_sizes)
    for algorithm in config.algorithms:
        speedups = result.speedups(algorithm, k_large, batch)
        assert speedups[nodes_max] > speedups[min(config.node_counts)], algorithm

    ours8_large = result.speedups("ours-8", k_large, batch)[nodes_max]
    ours_large = result.speedups("ours", k_large, batch)[nodes_max]
    gather_large = result.speedups("gather", k_large, batch)[nodes_max]
    gather_small = result.speedups("gather", k_small, batch)[nodes_max]
    ours_small = result.speedups("ours", k_small, batch)[nodes_max]

    # gather collapses for the largest sample size ...
    assert gather_large < ours8_large
    # ... but is competitive (within 2x) for the smallest one
    assert gather_small > 0.5 * ours_small
    # multi-pivot selection does not hurt, and ours is robust across k
    assert ours8_large >= 0.8 * ours_large

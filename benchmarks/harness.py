"""Shared helpers of the benchmark harness (sweep caching, result files).

Every benchmark module reproduces one table or figure of the paper's
evaluation (see EXPERIMENTS.md for the index).  Because several figures are
derived from the same scaling sweeps, the sweeps are executed once per
session and cached here.

Scale selection
---------------
The environment variable ``REPRO_BENCH_SCALE`` chooses the sweep size:

* ``smoke``   — a sanity run that finishes in well under a minute,
* ``default`` — the scaled-down reproduction described in EXPERIMENTS.md
  (the default; a few minutes for the full benchmark suite),
* ``full``    — the paper's original parameters (hours; provided for
  completeness).

Output
------
Each figure benchmark writes the series it reproduces as a plain-text table
to ``benchmarks/results/<figure>.txt`` (and prints it), so the numbers are
inspectable after a ``pytest benchmarks/ --benchmark-only`` run.

The gated CI benchmarks (``bench_smoke``, ``bench_jit``, ``bench_gather``,
…) write their measured numbers as JSON through :func:`write_bench_json`,
which stamps one shared ``"meta"`` block — schema version, benchmark name,
git revision, UTC timestamp, core count, kernel tier and payload transport
— so every artifact is self-describing and comparable across machines.
"""

from __future__ import annotations

import functools
import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

from repro.analysis.experiments import (
    ExperimentResult,
    ScalingConfig,
    run_strong_scaling,
    run_weak_scaling,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: repository root — the benchmark history files live here so trend data
#: survives ``benchmarks/results/`` cleanups and is easy to find
REPO_ROOT = Path(__file__).parent.parent

#: version of the shared benchmark-JSON ``meta`` block; bump on breaking
#: changes to the stamped fields
BENCH_SCHEMA_VERSION = 1

#: history files keep at most this many records (oldest dropped first)
BENCH_HISTORY_LIMIT = 200

__all__ = [
    "RESULTS_DIR",
    "REPO_ROOT",
    "BENCH_SCHEMA_VERSION",
    "BENCH_HISTORY_LIMIT",
    "bench_scale",
    "scaling_config",
    "weak_scaling_result",
    "strong_scaling_result",
    "write_result",
    "bench_metadata",
    "write_bench_json",
    "bench_history_path",
    "append_bench_history",
]


def bench_scale() -> str:
    """The sweep size selected through ``REPRO_BENCH_SCALE``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if scale not in ("smoke", "default", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be smoke/default/full, got {scale!r}")
    return scale


def scaling_config(scale: str) -> ScalingConfig:
    """The sweep parameters for a given scale name."""
    if scale == "smoke":
        return ScalingConfig.smoke()
    if scale == "full":
        return ScalingConfig.paper_full()
    return ScalingConfig.scaled_default()


@functools.lru_cache(maxsize=None)
def weak_scaling_result(scale: str) -> ExperimentResult:
    """The Figure-3 sweep (cached across benchmark modules)."""
    return run_weak_scaling(scaling_config(scale))


@functools.lru_cache(maxsize=None)
def strong_scaling_result(scale: str) -> ExperimentResult:
    """The Figure-4/5 sweep (cached across benchmark modules)."""
    return run_strong_scaling(scaling_config(scale))


def write_result(name: str, text: str) -> Path:
    """Persist a rendered table under ``benchmarks/results/`` and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}\n")
    return path


def _git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


def bench_metadata(
    bench: str,
    *,
    kernel_tier: Optional[str] = None,
    payload_transport: Optional[str] = None,
) -> dict:
    """The shared ``meta`` block every benchmark JSON artifact carries."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": bench,
        "git_revision": _git_revision(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "cpu_count": os.cpu_count() or 1,
        "kernel_tier": kernel_tier or "",
        "payload_transport": payload_transport or "",
    }


def write_bench_json(
    path: Path,
    results: dict,
    *,
    bench: str,
    kernel_tier: Optional[str] = None,
    payload_transport: Optional[str] = None,
) -> Path:
    """Write a benchmark's results dict as strict JSON with the shared schema.

    Adds the :func:`bench_metadata` block under ``"meta"`` (kernel tier and
    payload transport default to the results' own top-level keys when
    present) and serialises with ``allow_nan=False``, so an accidental
    ``inf``/``nan`` fails loudly instead of producing spec-invalid JSON.
    """
    payload = dict(results)
    payload["meta"] = bench_metadata(
        bench,
        kernel_tier=kernel_tier or str(results.get("kernel_tier", "")),
        payload_transport=payload_transport or str(results.get("payload_transport", "")),
    )
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n")
    print(f"wrote {path}")
    append_bench_history(payload, bench=bench)
    return path


def bench_history_path(bench: str, root: Optional[Path] = None) -> Path:
    """The top-level history file of one gated benchmark.

    ``bench_obs`` → ``<repo>/BENCH_obs_history.json`` (the ``bench_``
    prefix is folded into the ``BENCH_`` stem).
    """
    stem = bench[len("bench_"):] if bench.startswith("bench_") else bench
    return (root or REPO_ROOT) / f"BENCH_{stem}_history.json"


def append_bench_history(record: dict, *, bench: str, root: Optional[Path] = None) -> Path:
    """Append one schema-v1 result record to the benchmark's history file.

    The history is ``{"bench": ..., "schema_version": ..., "records":
    [...]}`` — every CI run of a gated benchmark adds one record, so
    ``python -m repro.obs.report --bench-history <file>`` can print the
    performance trend across commits.  Unreadable or foreign-schema
    files are started over rather than crashing the benchmark.
    """
    path = bench_history_path(bench, root)
    history = {"bench": bench, "schema_version": BENCH_SCHEMA_VERSION, "records": []}
    try:
        loaded = json.loads(path.read_text())
        if isinstance(loaded, dict) and isinstance(loaded.get("records"), list):
            history["records"] = loaded["records"]
    except (OSError, json.JSONDecodeError):
        pass
    history["records"].append(record)
    history["records"] = history["records"][-BENCH_HISTORY_LIMIT:]
    path.write_text(json.dumps(history, indent=2, sort_keys=True, allow_nan=False) + "\n")
    print(f"appended record {len(history['records'])} to {path}")
    return path

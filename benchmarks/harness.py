"""Shared helpers of the benchmark harness (sweep caching, result files).

Every benchmark module reproduces one table or figure of the paper's
evaluation (see EXPERIMENTS.md for the index).  Because several figures are
derived from the same scaling sweeps, the sweeps are executed once per
session and cached here.

Scale selection
---------------
The environment variable ``REPRO_BENCH_SCALE`` chooses the sweep size:

* ``smoke``   — a sanity run that finishes in well under a minute,
* ``default`` — the scaled-down reproduction described in EXPERIMENTS.md
  (the default; a few minutes for the full benchmark suite),
* ``full``    — the paper's original parameters (hours; provided for
  completeness).

Output
------
Each figure benchmark writes the series it reproduces as a plain-text table
to ``benchmarks/results/<figure>.txt`` (and prints it), so the numbers are
inspectable after a ``pytest benchmarks/ --benchmark-only`` run.

The gated CI benchmarks (``bench_smoke``, ``bench_jit``, ``bench_gather``,
…) write their measured numbers as JSON through :func:`write_bench_json`,
which stamps one shared ``"meta"`` block — schema version, benchmark name,
git revision, UTC timestamp, core count, kernel tier and payload transport
— so every artifact is self-describing and comparable across machines.
"""

from __future__ import annotations

import functools
import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

from repro.analysis.experiments import (
    ExperimentResult,
    ScalingConfig,
    run_strong_scaling,
    run_weak_scaling,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: version of the shared benchmark-JSON ``meta`` block; bump on breaking
#: changes to the stamped fields
BENCH_SCHEMA_VERSION = 1

__all__ = [
    "RESULTS_DIR",
    "BENCH_SCHEMA_VERSION",
    "bench_scale",
    "scaling_config",
    "weak_scaling_result",
    "strong_scaling_result",
    "write_result",
    "bench_metadata",
    "write_bench_json",
]


def bench_scale() -> str:
    """The sweep size selected through ``REPRO_BENCH_SCALE``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if scale not in ("smoke", "default", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be smoke/default/full, got {scale!r}")
    return scale


def scaling_config(scale: str) -> ScalingConfig:
    """The sweep parameters for a given scale name."""
    if scale == "smoke":
        return ScalingConfig.smoke()
    if scale == "full":
        return ScalingConfig.paper_full()
    return ScalingConfig.scaled_default()


@functools.lru_cache(maxsize=None)
def weak_scaling_result(scale: str) -> ExperimentResult:
    """The Figure-3 sweep (cached across benchmark modules)."""
    return run_weak_scaling(scaling_config(scale))


@functools.lru_cache(maxsize=None)
def strong_scaling_result(scale: str) -> ExperimentResult:
    """The Figure-4/5 sweep (cached across benchmark modules)."""
    return run_strong_scaling(scaling_config(scale))


def write_result(name: str, text: str) -> Path:
    """Persist a rendered table under ``benchmarks/results/`` and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}\n")
    return path


def _git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


def bench_metadata(
    bench: str,
    *,
    kernel_tier: Optional[str] = None,
    payload_transport: Optional[str] = None,
) -> dict:
    """The shared ``meta`` block every benchmark JSON artifact carries."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": bench,
        "git_revision": _git_revision(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "cpu_count": os.cpu_count() or 1,
        "kernel_tier": kernel_tier or "",
        "payload_transport": payload_transport or "",
    }


def write_bench_json(
    path: Path,
    results: dict,
    *,
    bench: str,
    kernel_tier: Optional[str] = None,
    payload_transport: Optional[str] = None,
) -> Path:
    """Write a benchmark's results dict as strict JSON with the shared schema.

    Adds the :func:`bench_metadata` block under ``"meta"`` (kernel tier and
    payload transport default to the results' own top-level keys when
    present) and serialises with ``allow_nan=False``, so an accidental
    ``inf``/``nan`` fails loudly instead of producing spec-invalid JSON.
    """
    payload = dict(results)
    payload["meta"] = bench_metadata(
        bench,
        kernel_tier=kernel_tier or str(results.get("kernel_tier", "")),
        payload_transport=payload_transport or str(results.get("payload_transport", "")),
    )
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n")
    print(f"wrote {path}")
    return path

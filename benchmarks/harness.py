"""Shared helpers of the benchmark harness (sweep caching, result files).

Every benchmark module reproduces one table or figure of the paper's
evaluation (see EXPERIMENTS.md for the index).  Because several figures are
derived from the same scaling sweeps, the sweeps are executed once per
session and cached here.

Scale selection
---------------
The environment variable ``REPRO_BENCH_SCALE`` chooses the sweep size:

* ``smoke``   — a sanity run that finishes in well under a minute,
* ``default`` — the scaled-down reproduction described in EXPERIMENTS.md
  (the default; a few minutes for the full benchmark suite),
* ``full``    — the paper's original parameters (hours; provided for
  completeness).

Output
------
Each figure benchmark writes the series it reproduces as a plain-text table
to ``benchmarks/results/<figure>.txt`` (and prints it), so the numbers are
inspectable after a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

from repro.analysis.experiments import (
    ExperimentResult,
    ScalingConfig,
    run_strong_scaling,
    run_weak_scaling,
)

RESULTS_DIR = Path(__file__).parent / "results"

__all__ = [
    "RESULTS_DIR",
    "bench_scale",
    "scaling_config",
    "weak_scaling_result",
    "strong_scaling_result",
    "write_result",
]


def bench_scale() -> str:
    """The sweep size selected through ``REPRO_BENCH_SCALE``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if scale not in ("smoke", "default", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be smoke/default/full, got {scale!r}")
    return scale


def scaling_config(scale: str) -> ScalingConfig:
    """The sweep parameters for a given scale name."""
    if scale == "smoke":
        return ScalingConfig.smoke()
    if scale == "full":
        return ScalingConfig.paper_full()
    return ScalingConfig.scaled_default()


@functools.lru_cache(maxsize=None)
def weak_scaling_result(scale: str) -> ExperimentResult:
    """The Figure-3 sweep (cached across benchmark modules)."""
    return run_weak_scaling(scaling_config(scale))


@functools.lru_cache(maxsize=None)
def strong_scaling_result(scale: str) -> ExperimentResult:
    """The Figure-4/5 sweep (cached across benchmark modules)."""
    return run_strong_scaling(scaling_config(scale))


def write_result(name: str, text: str) -> Path:
    """Persist a rendered table under ``benchmarks/results/`` and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}\n")
    return path

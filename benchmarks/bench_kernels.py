"""Wall-clock micro-benchmarks of the Python kernels (pytest-benchmark).

Unlike the figure benchmarks — which report *simulated* times under the
paper's machine model — these measure the real wall-clock performance of
the building blocks of this implementation: key generation, the
exponential-jumps batch kernel, reservoir insertion (B+ tree vs. sorted
array), distributed selection and a full mini-batch round of the simulator.
They are the numbers to look at when judging how fast the simulation itself
runs, and they back the Section 5 / 6.2 implementation discussion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.btree import BPlusTree
from repro.core import keys as keymod, make_store
from repro.core.local_reservoir import LocalReservoir
from repro.network import SimComm
from repro.selection import ArrayKeySet, MultiPivotSelection, SinglePivotSelection
from repro.stream import MiniBatchStream
from repro.utils import spawn_generators

RNG = np.random.default_rng(12345)
BATCH = 50_000
RESERVOIR = 10_000
STORE_BATCH = 4_096


@pytest.mark.benchmark(group="kernels-keys")
def test_exponential_key_generation(benchmark):
    weights = RNG.uniform(0.1, 100.0, size=BATCH)
    rng = np.random.default_rng(0)
    result = benchmark(keymod.exponential_keys, weights, rng)
    assert result.shape == (BATCH,)


@pytest.mark.benchmark(group="kernels-keys")
def test_weighted_jump_kernel_steady_state(benchmark):
    """The per-batch skip traversal once n >> k (few insertions)."""
    weights = RNG.uniform(0.1, 100.0, size=BATCH)
    threshold = 1e-6  # deep in the stream: almost nothing is accepted
    rng = np.random.default_rng(1)
    idx, keys = benchmark(keymod.weighted_jump_positions, weights, threshold, rng)
    assert len(idx) == len(keys)


@pytest.mark.benchmark(group="kernels-keys")
def test_uniform_jump_kernel_steady_state(benchmark):
    rng = np.random.default_rng(2)
    idx, keys = benchmark(keymod.uniform_jump_positions, BATCH, 0.001, rng)
    assert len(idx) == len(keys)


@pytest.mark.benchmark(group="kernels-reservoir")
def test_btree_insert_throughput(benchmark):
    keys = RNG.random(RESERVOIR)

    def build():
        tree = BPlusTree(order=16)
        for i, key in enumerate(keys):
            tree.insert(float(key), i)
        return tree

    tree = benchmark(build)
    assert len(tree) == RESERVOIR


@pytest.mark.benchmark(group="kernels-reservoir")
def test_sorted_array_bulk_insert_throughput(benchmark):
    keys = RNG.random(RESERVOIR)
    ids = np.arange(RESERVOIR)

    def build():
        reservoir = LocalReservoir(backend="sorted_array")
        for start in range(0, RESERVOIR, 500):
            reservoir.insert_many(keys[start : start + 500], ids[start : start + 500])
        return reservoir

    reservoir = benchmark(build)
    assert len(reservoir) == RESERVOIR


@pytest.mark.benchmark(group="kernels-store")
@pytest.mark.parametrize("backend", ["btree", "merge"])
def test_store_batch_insert_throughput(benchmark, backend):
    """The tentpole fast path: whole-batch ingestion into a reservoir store.

    The merge store ingests each 4096-item batch with one mask + sort +
    merge pass; the B+ tree descends once per item.  The acceptance bar of
    the batch-kernel work is merge >= 5x btree at this batch size.
    """
    n_batches = 4
    key_batches = [RNG.random(STORE_BATCH) for _ in range(n_batches)]
    id_batches = [np.arange(i * STORE_BATCH, (i + 1) * STORE_BATCH) for i in range(n_batches)]

    def build():
        store = make_store(backend)
        for keys, ids in zip(key_batches, id_batches):
            store.insert_batch(keys, ids, capacity=RESERVOIR)
        return store

    store = benchmark(build)
    assert len(store) == RESERVOIR


@pytest.mark.benchmark(group="kernels-store")
@pytest.mark.parametrize("backend", ["btree", "merge"])
def test_store_rank_query_throughput(benchmark, backend):
    """Vectorized kth_keys / count_le queries on a full store."""
    store = make_store(backend)
    store.insert_batch(RNG.random(RESERVOIR), np.arange(RESERVOIR))
    ranks = RNG.integers(1, RESERVOIR + 1, size=256)
    probes = RNG.random(256)

    def run_queries():
        keys = store.kth_keys(ranks)
        total = sum(store.count_le(float(q)) for q in probes)
        return keys, total

    keys, total = benchmark(run_queries)
    assert keys.shape == (256,) and total > 0


@pytest.mark.benchmark(group="kernels-reservoir")
def test_btree_rank_select_queries(benchmark):
    tree = BPlusTree(order=16)
    keys = RNG.random(RESERVOIR)
    for i, key in enumerate(keys):
        tree.insert(float(key), i)
    queries = RNG.random(1000)

    def run_queries():
        total = 0
        for q in queries:
            total += tree.count_le(float(q))
            tree.select(total % RESERVOIR)
        return total

    assert benchmark(run_queries) > 0


@pytest.mark.benchmark(group="kernels-reservoir")
def test_btree_truncate_after_batch(benchmark):
    keys = np.sort(RNG.random(RESERVOIR))

    def build_and_truncate():
        tree = BPlusTree.from_sorted_items([(float(k), i) for i, k in enumerate(keys)], order=16)
        tree.truncate_to_rank(RESERVOIR // 2)
        return tree

    tree = benchmark(build_and_truncate)
    assert len(tree) == RESERVOIR // 2


@pytest.mark.benchmark(group="kernels-selection")
@pytest.mark.parametrize("pivots", [1, 8], ids=["single-pivot", "eight-pivots"])
def test_distributed_selection_wall_clock(benchmark, pivots):
    p, per_pe, k = 64, 500, 8_000
    arrays = [RNG.random(per_pe) for _ in range(p)]
    keyset = ArrayKeySet(arrays)
    algorithm = SinglePivotSelection() if pivots == 1 else MultiPivotSelection(pivots)
    truth = np.sort(np.concatenate(arrays))[k - 1]

    def select():
        comm = SimComm(p)
        return algorithm.select(keyset, k, comm, spawn_generators(3, p))

    result = benchmark(select)
    assert result.key == pytest.approx(truth)


@pytest.mark.benchmark(group="kernels-round")
@pytest.mark.parametrize("algorithm", ["ours", "ours-8", "gather"])
def test_full_round_wall_clock(benchmark, algorithm):
    """Wall-clock cost of simulating one steady-state mini-batch round."""
    from repro.core import make_distributed_sampler

    p, k, batch = 32, 1_000, 2_000
    comm = SimComm(p)
    sampler = make_distributed_sampler(algorithm, k, comm, seed=7)
    stream = MiniBatchStream(p, batch, seed=8)
    # warm up into the steady state
    for _ in range(3):
        sampler.process_round(stream.next_round().batches)

    def one_round():
        return sampler.process_round(stream.next_round().batches)

    metrics = benchmark(one_round)
    assert metrics.batch_items == p * batch

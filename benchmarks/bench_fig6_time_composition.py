"""Figure 6 — composition of the running time (insert / select / threshold / gather).

Paper setup: for the largest sample size, compare ``ours-8`` and ``gather``
per node count, each bar split into the time spent processing the local
input (insert), establishing the new threshold (select), publishing it
(threshold) and — for the centralized algorithm — gathering the candidates
(gather).  Each pair of bars is normalised to the slower of the two
algorithms.  Four panels: strong scaling with B2 and B3, weak scaling with
b2 and b3.

Expected qualitative shape (checked by assertions):
* for our algorithm the fraction spent on selection grows with the node
  count while the insert fraction shrinks;
* for the centralized algorithm the select + gather share grows and its
  total time exceeds ours at scale.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.runtime.metrics import PHASES

from harness import strong_scaling_result, weak_scaling_result, write_result

ALGORITHMS = ("ours-8", "gather")


def composition_rows(result, config, k, size, algorithms=ALGORITHMS):
    """Figure-6 style rows: per node count, per algorithm, the phase shares
    of the *slower* algorithm's total time (so rows are comparable pairs)."""
    rows = []
    for nodes in sorted(config.node_counts):
        totals = {}
        phase_times = {}
        for algorithm in algorithms:
            metrics = result.get(algorithm, k, size, nodes)
            phase_times[algorithm] = metrics.phase_times()
            totals[algorithm] = metrics.simulated_time
        slower = max(totals.values())
        for algorithm in algorithms:
            shares = {
                phase: phase_times[algorithm].get(phase).total / slower
                if phase in phase_times[algorithm]
                else 0.0
                for phase in PHASES
            }
            rows.append(
                [nodes, algorithm]
                + [shares[phase] for phase in PHASES]
                + [totals[algorithm] / slower]
            )
    return rows


@pytest.mark.benchmark(group="fig6-composition")
def test_fig6_running_time_composition(benchmark, scale, config):
    strong = benchmark.pedantic(strong_scaling_result, args=(scale,), rounds=1, iterations=1)
    weak = weak_scaling_result(scale)

    k = max(config.sample_sizes)
    headers = ["nodes", "algorithm"] + list(PHASES) + ["total (rel.)"]
    sections = []

    strong_sizes = sorted(config.strong_total_batches)[-2:]
    for size in strong_sizes:
        rows = composition_rows(strong, config, k, size)
        sections.append(
            f"Strong scaling, total batch B = {size}, k = {k} "
            f"(fractions of the slower algorithm's time)\n"
            + format_table(headers, rows, precision=3)
        )
    weak_sizes = sorted(config.weak_batch_sizes)[-2:]
    for size in weak_sizes:
        rows = composition_rows(weak, config, k, size)
        sections.append(
            f"Weak scaling, per-PE batch b = {size}, k = {k} "
            f"(fractions of the slower algorithm's time)\n"
            + format_table(headers, rows, precision=3)
        )
    write_result("fig6_time_composition.txt", "\n\n".join(sections))


    if scale == "smoke":
        # The smoke sweep is too small for the paper's crossovers (gather is
        # legitimately competitive for tiny sample sizes); the qualitative
        # shape checks below are only meaningful at default/full scale.
        return

    # ---- qualitative shape checks -------------------------------------
    nodes = sorted(config.node_counts)
    first, last = nodes[0], nodes[-1]
    size = max(config.strong_total_batches)

    ours_first = strong.get("ours-8", k, size, first).phase_fractions()
    ours_last = strong.get("ours-8", k, size, last).phase_fractions()
    # selection's share of our running time grows with the machine size
    assert ours_last.get("select", 0.0) > ours_first.get("select", 0.0)
    # the insert share shrinks correspondingly
    assert ours_last.get("insert", 1.0) < ours_first.get("insert", 1.0)

    gather_last = strong.get("gather", k, size, last)
    ours_last_total = strong.get("ours-8", k, size, last).simulated_time
    # at scale, the centralized algorithm is the slower of the two
    assert gather_last.simulated_time > ours_last_total
    # and its select + gather phases dominate its own running time
    fractions = gather_last.phase_fractions()
    assert fractions.get("select", 0.0) + fractions.get("gather", 0.0) > 0.5

"""Section 4.4 — reservoir sampling with a variable reservoir size.

Compares, in the steady state, the fixed-size sampler (selection every
round, exact rank) against the variable-size sampler (selection only when
the sample outgrows ``k_hi``, banded amsSelect): number of selections,
selection recursion depth, simulated selection time and total time.

Expected shape (Corollary 5): the variable-size sampler runs far fewer
selections and each of them converges in (expected) constantly many rounds,
so its selection time is a small fraction of the fixed-size sampler's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import DistributedReservoirSampler, VariableSizeReservoirSampler
from repro.network import SimComm
from repro.selection import AmsSelection, MultiPivotSelection
from repro.stream import MiniBatchStream

from harness import scaling_config, write_result


@pytest.mark.benchmark(group="variable-size")
def test_variable_size_vs_fixed(benchmark, scale):
    config = scaling_config(scale)
    machine = config.machine_spec()
    p, k, batch, rounds = 32, 500, 400, 30

    def run_fixed():
        comm = SimComm(p, cost=machine.comm)
        sampler = DistributedReservoirSampler(
            k, comm, machine=machine, selection=MultiPivotSelection(8), seed=21
        )
        stream = MiniBatchStream(p, batch, seed=22)
        metrics = []
        for _ in range(rounds):
            metrics.append(sampler.process_round(stream.next_round().batches))
        return sampler, metrics

    def run_variable():
        comm = SimComm(p, cost=machine.comm)
        sampler = VariableSizeReservoirSampler(
            k, 2 * k, comm, machine=machine, selection=AmsSelection(2), seed=21
        )
        stream = MiniBatchStream(p, batch, seed=22)
        metrics = []
        for _ in range(rounds):
            metrics.append(sampler.process_round(stream.next_round().batches))
        return sampler, metrics

    fixed_sampler, fixed_metrics = benchmark.pedantic(run_fixed, rounds=1, iterations=1)
    variable_sampler, variable_metrics = run_variable()

    def summarise(metrics_list):
        selections = sum(1 for m in metrics_list if m.selection_ran)
        depth = np.mean(
            [m.selection_stats.recursion_depth for m in metrics_list if m.selection_ran]
        ) if selections else 0.0
        select_time = sum(m.phase_total("select") for m in metrics_list)
        total_time = sum(m.simulated_time for m in metrics_list)
        return selections, float(depth), select_time, total_time

    fixed_summary = summarise(fixed_metrics)
    variable_summary = summarise(variable_metrics)
    rows = [
        ["fixed k", *fixed_summary[:2], fixed_summary[2] * 1e6, fixed_summary[3] * 1e6,
         fixed_sampler.sample_size()],
        ["variable k..2k", *variable_summary[:2], variable_summary[2] * 1e6,
         variable_summary[3] * 1e6, variable_sampler.sample_size()],
    ]
    write_result(
        "variable_size.txt",
        f"Variable reservoir size, p = {p}, k = {k}, {rounds} rounds of {batch} items/PE\n"
        + format_table(
            ["sampler", "selections", "mean depth", "select time (us)", "total time (us)", "sample size"],
            rows,
        ),
    )

    # the variable-size sampler selects far less often ...
    assert variable_summary[0] < fixed_summary[0] / 2
    # ... spends less simulated time on selection overall ...
    assert variable_summary[2] < fixed_summary[2]
    # ... and still maintains a sample inside the band
    assert k <= variable_sampler.sample_size() <= 2 * k
    assert fixed_sampler.sample_size() == k

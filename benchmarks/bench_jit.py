"""Compiled-tier microbenchmark: numba kernels vs. the numpy reference tier.

Measures the kernels the ``kernel_tier="jit"`` path replaces — the
exponential-jump traversal (weighted), the geometric-jump traversal
(uniform), the sorted-store merge ingest and the rank-select gather — under
both tiers, asserts the outputs are **byte-identical**, and gates on the
compiled tier's speedup.

Gates (enforced only where numba is installed):

* **speedup** — the geometric mean of the weighted-jump, uniform-jump and
  merge-ingest speedups must reach ``MIN_JIT_SPEEDUP`` (3x).  The
  workloads are sized so the interpreter overhead the compiled tier
  eliminates dominates (hundreds of sub-threshold insertions per batch);
  the rank-select speedup is reported informationally only — it is too
  small a kernel to gate on reliably.
* **identity** — every kernel pair must produce bitwise-equal outputs for
  the same seed; any divergence fails the run regardless of speed.
* **regression** — the compiled-tier throughputs must not drop by more
  than ``--max-regression`` (default 2x) below the conservative baseline
  in ``benchmarks/baselines/bench_jit_baseline.json`` (refresh with
  ``--update-baseline`` after an intentional change).

Without numba the run records a skip (``{"skipped": true, ...}`` in the
output JSON) and exits 0, mirroring the core-count-gated skips of
``bench_parallel_scaling.py`` — single-interpreter CI legs still produce
an artifact documenting *why* nothing was measured.

Usage::

    PYTHONPATH=src python benchmarks/bench_jit.py --output BENCH_jit.json
    PYTHONPATH=src python benchmarks/bench_jit.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

import numpy as np
from baseline_gate import best_of, compare_to_baseline, load_baseline, write_conservative_baseline
from harness import write_bench_json

from repro.core import jit_kernels
from repro.core import keys as keymod
from repro.core.store import MergeStore

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "bench_jit_baseline.json"

#: batch sizes chosen so the per-insertion interpreter overhead dominates
#: the numpy tier: ~500 sub-threshold insertions per 50k-item batch
BATCH = 50_000
WEIGHTED_THRESHOLD = 0.002  # E[insertions] ~ T * total_weight ~ 500
UNIFORM_THRESHOLD = 0.01  # E[insertions] = T * BATCH = 500
MERGE_CAPACITY = 2_048
MERGE_BATCH = 256
MERGE_ROUNDS = 40
SELECT_RESERVOIR = 10_000
SELECT_RANKS = 256

#: acceptance gate: geometric mean of the three loop-kernel speedups
MIN_JIT_SPEEDUP = 3.0


def _weights():
    return np.random.default_rng(0).uniform(0.1, 10.0, size=BATCH)


def bench_weighted_jump() -> dict:
    weights = _weights()
    numpy_s = best_of(
        lambda: keymod.weighted_jump_positions(weights, WEIGHTED_THRESHOLD, np.random.default_rng(1))
    )
    jit_s = best_of(
        lambda: jit_kernels.weighted_jump_positions_jit(
            weights, WEIGHTED_THRESHOLD, np.random.default_rng(1)
        )
    )
    idx_np, keys_np = keymod.weighted_jump_positions(
        weights, WEIGHTED_THRESHOLD, np.random.default_rng(2)
    )
    idx_jit, keys_jit = jit_kernels.weighted_jump_positions_jit(
        weights, WEIGHTED_THRESHOLD, np.random.default_rng(2)
    )
    return {
        "numpy_weighted_jump_items_per_s": BATCH / numpy_s,
        "jit_weighted_jump_items_per_s": BATCH / jit_s,
        "weighted_jump_speedup": numpy_s / jit_s,
        "_identical": bool(
            np.array_equal(idx_np, idx_jit) and np.array_equal(keys_np, keys_jit)
        ),
        "_insertions": int(idx_np.shape[0]),
    }


def bench_uniform_jump() -> dict:
    numpy_s = best_of(
        lambda: keymod.uniform_jump_positions(BATCH, UNIFORM_THRESHOLD, np.random.default_rng(3))
    )
    jit_s = best_of(
        lambda: jit_kernels.uniform_jump_positions_jit(
            BATCH, UNIFORM_THRESHOLD, np.random.default_rng(3)
        )
    )
    idx_np, keys_np = keymod.uniform_jump_positions(
        BATCH, UNIFORM_THRESHOLD, np.random.default_rng(4)
    )
    idx_jit, keys_jit = jit_kernels.uniform_jump_positions_jit(
        BATCH, UNIFORM_THRESHOLD, np.random.default_rng(4)
    )
    return {
        "numpy_uniform_jump_items_per_s": BATCH / numpy_s,
        "jit_uniform_jump_items_per_s": BATCH / jit_s,
        "uniform_jump_speedup": numpy_s / jit_s,
        "_identical": bool(
            np.array_equal(idx_np, idx_jit) and np.array_equal(keys_np, keys_jit)
        ),
        "_insertions": int(idx_np.shape[0]),
    }


def _merge_workload():
    rng = np.random.default_rng(5)
    return [
        (rng.random(MERGE_BATCH), np.arange(i * MERGE_BATCH, (i + 1) * MERGE_BATCH))
        for i in range(MERGE_ROUNDS)
    ]


def _merge_run(tier: str, batches) -> MergeStore:
    store = MergeStore(kernel_tier=tier)
    for keys, ids in batches:
        store.insert_batch(keys, ids, capacity=MERGE_CAPACITY)
    return store


def bench_merge_ingest() -> dict:
    batches = _merge_workload()
    total = MERGE_ROUNDS * MERGE_BATCH
    numpy_s = best_of(lambda: _merge_run("numpy", batches), repeats=3)
    jit_s = best_of(lambda: _merge_run("jit", batches), repeats=3)
    ref, compiled = _merge_run("numpy", batches), _merge_run("jit", batches)
    return {
        "numpy_merge_ingest_items_per_s": total / numpy_s,
        "jit_merge_ingest_items_per_s": total / jit_s,
        "merge_ingest_speedup": numpy_s / jit_s,
        "_identical": bool(
            np.array_equal(ref.keys_array(), compiled.keys_array())
            and np.array_equal(ref.ids_array(), compiled.ids_array())
        ),
    }


def bench_rank_select() -> dict:
    """Informational: the 1-based rank gather of the selection phase."""
    keys = np.sort(np.random.default_rng(6).random(SELECT_RESERVOIR))
    ranks = np.random.default_rng(7).integers(1, SELECT_RESERVOIR + 1, size=SELECT_RANKS)
    numpy_s = best_of(lambda: keys[np.asarray(ranks, dtype=np.int64) - 1], repeats=7)
    jit_s = best_of(lambda: jit_kernels.take_ranks_jit(keys, ranks), repeats=7)
    return {
        "rank_select_speedup": numpy_s / jit_s,
        "_identical": bool(
            np.array_equal(keys[ranks - 1], jit_kernels.take_ranks_jit(keys, ranks))
        ),
    }


def run_suite() -> dict:
    # trigger the one-off numba compilation outside the timed region
    jit_kernels.weighted_jump_positions_jit(np.ones(8), 0.5, np.random.default_rng(0))
    jit_kernels.uniform_jump_positions_jit(8, 0.5, np.random.default_rng(0))
    jit_kernels.merge_sorted_jit(
        np.array([0.5]), np.array([1], dtype=np.int64), np.array([0.6]), np.array([2], dtype=np.int64)
    )
    jit_kernels.take_ranks_jit(np.array([0.5]), np.array([1], dtype=np.int64))

    results = {
        "skipped": False,
        "kernel_tier": "jit",
        "batch": BATCH,
        "weighted_threshold": WEIGHTED_THRESHOLD,
        "uniform_threshold": UNIFORM_THRESHOLD,
    }
    identical = True
    for part in (bench_weighted_jump(), bench_uniform_jump(), bench_merge_ingest(), bench_rank_select()):
        identical = identical and part.pop("_identical")
        part.pop("_insertions", None)
        results.update(part)
    results["outputs_identical_across_tiers"] = identical
    results["gate_speedup_geomean"] = float(
        math.exp(
            sum(
                math.log(results[name])
                for name in (
                    "weighted_jump_speedup",
                    "uniform_jump_speedup",
                    "merge_ingest_speedup",
                )
            )
            / 3.0
        )
    )
    return results


def evaluate_gate(results: dict, *, baseline: Path, max_regression: float) -> list:
    failures = []
    if not results["outputs_identical_across_tiers"]:
        failures.append("compiled kernels produced different outputs than the numpy tier")
    geomean = results["gate_speedup_geomean"]
    if geomean < MIN_JIT_SPEEDUP:
        failures.append(
            f"jit speedup geomean {geomean:.2f}x is below the required {MIN_JIT_SPEEDUP:g}x "
            f"(weighted {results['weighted_jump_speedup']:.2f}x, "
            f"uniform {results['uniform_jump_speedup']:.2f}x, "
            f"merge {results['merge_ingest_speedup']:.2f}x)"
        )
    if not baseline.exists():
        failures.append(f"no baseline at {baseline}; record one with --update-baseline")
    else:
        failures.extend(
            compare_to_baseline(
                results,
                load_baseline(baseline),
                max_regression,
                skip=[name for name in load_baseline(baseline) if name.endswith("speedup")],
            )
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_jit.json"))
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the measured jit throughputs (halved, conservative) as the new baseline",
    )
    args = parser.parse_args(argv)

    if not jit_kernels.numba_available():
        # skip-record, same convention as the core-count-gated speedup gates
        results = {
            "skipped": True,
            "kernel_tier": "numpy",
            "reason": (
                "numba not installed — the compiled tier cannot be measured here "
                f"(import failed with: {jit_kernels.NUMBA_IMPORT_ERROR})"
            ),
        }
        print(f"jit benchmark skipped: {results['reason']}")
        write_bench_json(args.output, results, bench="bench_jit")
        return 0

    results = run_suite()
    write_bench_json(args.output, results, bench="bench_jit")
    for name in sorted(results):
        if name.endswith("_items_per_s"):
            print(f"  {name:42s} {results[name]:>14,.0f} items/s")
        elif name.endswith("speedup") or name.endswith("geomean"):
            print(f"  {name:42s} {results[name]:>14.2f}x")

    if args.update_baseline:
        write_conservative_baseline(
            args.baseline,
            {
                name: results[name]
                for name in results
                if name.startswith("jit_") and name.endswith("_items_per_s")
            },
        )
        print(f"updated baseline {args.baseline}")
        return 0

    failures = evaluate_gate(results, baseline=args.baseline, max_regression=args.max_regression)
    if failures:
        print("\nJIT KERNEL GATE FAILED:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(
        f"\njit tier ok: speedup geomean {results['gate_speedup_geomean']:.2f}x >= "
        f"{MIN_JIT_SPEEDUP:g}x, outputs byte-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CI benchmark smoke: tiny-scale kernel throughputs with a regression gate.

Runs the building-block kernels of ``bench_kernels.py`` at a scale that
finishes in a few seconds, writes the measured throughputs to a JSON file
(uploaded as a CI artifact) and fails when any kernel regressed by more
than ``--max-regression`` (default 2x) against the checked-in baseline in
``benchmarks/baselines/bench_kernels_baseline.json``.

The baseline numbers are deliberately conservative (about half of what a
2024 laptop core measures) so that slower CI runners do not false-fail;
the 2x regression budget is on top of that.  Machine-independent gates —
the merge-store vs. B+ tree speedup ratio — are asserted exactly.

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py --output BENCH_kernels.json
    PYTHONPATH=src python benchmarks/bench_smoke.py --update-baseline

Exit status 0 = no regression, 1 = regression or speedup gate missed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np
from baseline_gate import (
    best_of,
    compare_to_baseline,
    load_baseline,
    write_conservative_baseline,
)
from harness import write_bench_json

from repro.core import keys as keymod
from repro.core import make_distributed_sampler, make_store
from repro.network import SimComm
from repro.stream import MiniBatchStream

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "bench_kernels_baseline.json"

BATCH = 4_096
CAPACITY = 2_048
#: acceptance gate: merge-store batch insertion must beat the B+ tree by
#: at least this factor at batch size >= 4096 (machine-independent ratio)
MIN_MERGE_SPEEDUP = 5.0


def bench_key_generation() -> float:
    rng = np.random.default_rng(0)
    weights = rng.uniform(0.1, 100.0, size=BATCH)
    key_rng = np.random.default_rng(1)
    return BATCH / best_of(lambda: keymod.exponential_keys(weights, key_rng))


def bench_weighted_jump_kernel() -> float:
    rng = np.random.default_rng(2)
    weights = rng.uniform(0.1, 100.0, size=BATCH)
    jump_rng = np.random.default_rng(3)
    return BATCH / best_of(lambda: keymod.weighted_jump_positions(weights, 1e-6, jump_rng))


def _store_insert_seconds(backend: str, *, n_batches: int) -> float:
    rng = np.random.default_rng(4)
    batches = [
        (rng.random(BATCH), np.arange(i * BATCH, (i + 1) * BATCH)) for i in range(n_batches)
    ]

    def build():
        store = make_store(backend)
        for keys, ids in batches:
            store.insert_batch(keys, ids, capacity=CAPACITY)

    return best_of(build, repeats=3) / n_batches


def bench_store_inserts() -> dict:
    seconds = {backend: _store_insert_seconds(backend, n_batches=2) for backend in ("btree", "merge")}
    return {
        "btree_store_insert_items_per_s": BATCH / seconds["btree"],
        "merge_store_insert_items_per_s": BATCH / seconds["merge"],
        "merge_vs_btree_speedup": seconds["btree"] / seconds["merge"],
    }


def bench_full_round() -> float:
    """Steady-state mini-batch round of the full simulator (items/s)."""
    p, k, batch = 4, 256, 1_024
    sampler = make_distributed_sampler("ours", k, SimComm(p), seed=7)
    stream = MiniBatchStream(p, batch, seed=8)
    for _ in range(3):  # warm into the steady state
        sampler.process_round(stream.next_round().batches)
    rounds = [stream.next_round().batches for _ in range(5)]

    def run():
        for batches in rounds:
            sampler.process_round(batches)

    return len(rounds) * p * batch / best_of(run, repeats=3)


def run_suite() -> dict:
    results = {
        # this suite measures the reference tier; bench_jit.py measures the
        # compiled one.  Recorded so artifacts are self-describing.
        "kernel_tier": "numpy",
        "key_generation_items_per_s": bench_key_generation(),
        "weighted_jump_kernel_items_per_s": bench_weighted_jump_kernel(),
        "full_round_items_per_s": bench_full_round(),
    }
    results.update(bench_store_inserts())
    return results


def compare(results: dict, baseline: dict, max_regression: float) -> list:
    """Regression messages (empty = pass)."""
    # the speedup ratio is machine-independent and gated exactly below,
    # not via the regression budget
    failures = compare_to_baseline(
        results, baseline, max_regression, skip=("merge_vs_btree_speedup",)
    )
    speedup = results.get("merge_vs_btree_speedup", 0.0)
    if speedup < MIN_MERGE_SPEEDUP:
        failures.append(
            f"merge_vs_btree_speedup: {speedup:.1f}x is below the required "
            f"{MIN_MERGE_SPEEDUP:g}x at batch size {BATCH}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_kernels.json"))
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the measured numbers (halved, to stay conservative) as the new baseline",
    )
    args = parser.parse_args(argv)

    results = run_suite()
    write_bench_json(args.output, results, bench="bench_smoke")
    for name, value in sorted(results.items()):
        if not isinstance(value, float):
            continue
        unit = "x" if name.endswith("speedup") else " items/s"
        print(f"  {name:40s} {value:>14,.1f}{unit}")

    if args.update_baseline:
        write_conservative_baseline(
            args.baseline, results, keep_exact=[n for n in results if n.endswith("speedup")]
        )
        print(f"updated baseline {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update-baseline to create one")
        return 1
    failures = compare(results, load_baseline(args.baseline), args.max_regression)
    if failures:
        print("\nBENCHMARK REGRESSION:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print("\nno regression (budget {:g}x, merge speedup {:.1f}x >= {:g}x)".format(
        args.max_regression, results["merge_vs_btree_speedup"], MIN_MERGE_SPEEDUP
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main())

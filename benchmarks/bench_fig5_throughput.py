"""Figure 5 — strong scaling, per-PE throughput (items per PE per second).

Same sweep as Figure 4, but reporting the number of processed items per PE
per second of (simulated) time.  The paper's characteristic shape: the
throughput per PE peaks when the per-PE batch just fits into cache and then
declines along the predicted curve as the communication cost of selection
dominates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_series_table

from harness import strong_scaling_result, write_result


@pytest.mark.benchmark(group="fig5-throughput")
def test_fig5_throughput_per_pe(benchmark, scale, config):
    result = benchmark.pedantic(strong_scaling_result, args=(scale,), rounds=1, iterations=1)

    sections = []
    for total in config.strong_total_batches:
        series = {}
        for k in config.sample_sizes:
            for algorithm in config.algorithms:
                series[f"{algorithm} k={k}"] = result.throughputs_per_pe(algorithm, k, total)
        table = format_series_table(series, x_label="nodes", precision=3)
        sections.append(
            f"Strong scaling throughput per PE (items/s), total batch B = {total}\n{table}"
        )
    write_result("fig5_throughput_per_pe.txt", "\n\n".join(sections))


    if scale == "smoke":
        # The smoke sweep is too small for the paper's crossovers (gather is
        # legitimately competitive for tiny sample sizes); the qualitative
        # shape checks below are only meaningful at default/full scale.
        return

    # ---- qualitative shape checks -------------------------------------
    nodes = sorted(config.node_counts)
    k_small = min(config.sample_sizes)
    total_small = min(config.strong_total_batches)
    ours = result.throughputs_per_pe("ours", k_small, total_small)
    values = [ours[n] for n in nodes]

    # the per-PE throughput is not monotone: it peaks at an intermediate
    # node count (cache effect) and declines afterwards
    peak_index = int(np.argmax(values))
    assert peak_index >= 1 or values[0] > values[-1]
    assert values[-1] < max(values), "throughput per PE should decline at large node counts"

    # at the largest machine the largest-k gather throughput is the worst of
    # the three algorithms (communication/root bound)
    k_large = max(config.sample_sizes)
    total_large = max(config.strong_total_batches)
    last = nodes[-1]
    gather_throughput = result.throughputs_per_pe("gather", k_large, total_large)[last]
    ours8_throughput = result.throughputs_per_pe("ours-8", k_large, total_large)[last]
    assert gather_throughput < ours8_throughput

"""Pipelined vs. lock-step round throughput on the real multiprocess backend.

Measures steady-state round throughput (items/s) at ``p=4`` worker
processes for three schedules of the same workload:

* **lock-step** — :class:`repro.runtime.ParallelStreamingRun` (insert and
  selection serialised, the pre-pipeline baseline),
* **strict pipeline** — next batch materialised in worker background
  threads during the selection; byte-identical samples,
* **relaxed pipeline** — batch *and* key generation overlapped under a
  one-round-stale threshold (the paper's asynchrony trade), reporting the
  measured overlap efficiency and the stale-candidate overhead.

Gates:

* **relaxed vs lock-step** — with at least ``P + 1`` usable CPU cores
  (the workers' prepare threads need spare cycles next to the selection),
  the relaxed pipeline must be at least as fast as lock-step
  (``MIN_RATIO_MULTI_CORE``, 1.0).  On machines with fewer cores — e.g.
  single-core CI sandboxes, where the background prepare *competes* with
  the selection for the same CPU instead of overlapping it — that claim
  is physically unenforceable, so the gate falls back to the conservative
  floor ``MIN_RATIO_FEW_CORES`` (0.7, catching pathological regressions
  only) and records the strict gate as skipped; pass ``--require-ratio``
  to enforce the multi-core gate regardless.
* **absolute throughput** — lock-step and relaxed throughput must not
  regress by more than ``--max-regression`` (default 2x) against the
  conservatively committed baseline in
  ``benchmarks/baselines/bench_pipeline_baseline.json``
  (see ``benchmarks/baseline_gate.py``; refresh with ``--update-baseline``).

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --output BENCH_pipeline.json
    PYTHONPATH=src python benchmarks/bench_pipeline.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np
from baseline_gate import compare_to_baseline, load_baseline, write_conservative_baseline
from harness import write_bench_json

from repro.pipeline import PipelinedSamplingRun
from repro.runtime import ParallelStreamingRun

ALGORITHM = "ours-8"
K = 1_000
P = 4
BATCH_SIZE = 65_536
ROUNDS = 6
WARMUP_ROUNDS = 2
SEED = 7
#: relaxed must be no slower than lock-step where real overlap is possible
MIN_RATIO_MULTI_CORE = 1.0
#: conservative floor on few-core machines (prepare competes for the CPU)
MIN_RATIO_FEW_CORES = 0.7
DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "bench_pipeline_baseline.json"


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _measure(make_run) -> dict:
    start = time.perf_counter()
    with make_run() as run:
        metrics = run.run_rounds(ROUNDS)
        sample = np.sort(run.sample_ids())
    return {
        "rounds": metrics.num_rounds,
        "total_items": metrics.total_items,
        "wall_time_s": metrics.wall_time,
        "items_per_s": metrics.wall_throughput_total(),
        "seconds_per_round": metrics.wall_time / max(metrics.num_rounds, 1),
        "overlap_saved_s": metrics.total_overlap_saved,
        "overlap_efficiency": metrics.overlap_efficiency(),
        "stale_extra_candidates": metrics.total_stale_extra_candidates,
        "setup_plus_run_s": time.perf_counter() - start,
        "_sample": sample,
    }


def run_suite() -> dict:
    common = dict(
        k=K, p=P, batch_size=BATCH_SIZE, warmup_rounds=WARMUP_ROUNDS, seed=SEED
    )
    print(f"workload: {ALGORITHM}, k={K}, p={P}, batch={BATCH_SIZE}, rounds={ROUNDS}")

    lockstep = _measure(lambda: ParallelStreamingRun(ALGORITHM, comm="process", **common))
    print(f"  lock-step: {lockstep['items_per_s']:>12,.0f} items/s")
    strict = _measure(
        lambda: PipelinedSamplingRun(ALGORITHM, comm="process", pipeline="strict", **common)
    )
    print(
        f"  strict:    {strict['items_per_s']:>12,.0f} items/s "
        f"(overlap saved {strict['overlap_saved_s'] * 1e3:.1f} ms, "
        f"efficiency {strict['overlap_efficiency']:.2f})"
    )
    relaxed = _measure(
        lambda: PipelinedSamplingRun(ALGORITHM, comm="process", pipeline="relaxed", **common)
    )
    print(
        f"  relaxed:   {relaxed['items_per_s']:>12,.0f} items/s "
        f"(overlap saved {relaxed['overlap_saved_s'] * 1e3:.1f} ms, "
        f"efficiency {relaxed['overlap_efficiency']:.2f}, "
        f"stale extra {relaxed['stale_extra_candidates']})"
    )

    strict_identical = bool(np.array_equal(lockstep.pop("_sample"), strict.pop("_sample")))
    relaxed.pop("_sample")
    results = {
        "algorithm": ALGORITHM,
        "k": K,
        "p": P,
        "batch_size": BATCH_SIZE,
        "rounds": ROUNDS,
        "warmup_rounds": WARMUP_ROUNDS,
        "lockstep": lockstep,
        "strict": strict,
        "relaxed": relaxed,
        "strict_sample_identical_to_lockstep": strict_identical,
        "relaxed_vs_lockstep_ratio": relaxed["items_per_s"] / lockstep["items_per_s"],
        "strict_vs_lockstep_ratio": strict["items_per_s"] / lockstep["items_per_s"],
        # flat keys for the shared baseline gate
        "lockstep_items_per_s": lockstep["items_per_s"],
        "relaxed_items_per_s": relaxed["items_per_s"],
    }
    print(
        f"  relaxed/lock-step ratio: {results['relaxed_vs_lockstep_ratio']:.3f}x, "
        f"strict sample identical: {strict_identical}"
    )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_pipeline.json"))
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument(
        "--require-ratio",
        action="store_true",
        help="enforce the multi-core relaxed >= lock-step gate even on few-core machines",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the measured numbers (halved, to stay conservative) as the new baseline",
    )
    args = parser.parse_args(argv)

    results = run_suite()
    cpus = usable_cpus()
    results["usable_cpus"] = cpus
    enough_cores = cpus >= P + 1 or args.require_ratio
    min_ratio = MIN_RATIO_MULTI_CORE if enough_cores else MIN_RATIO_FEW_CORES
    results["ratio_gate"] = {
        "enforced_min_ratio": min_ratio,
        "multi_core_gate_skipped": not enough_cores,
    }
    write_bench_json(args.output, results, bench="bench_pipeline")

    failures = []
    if not results["strict_sample_identical_to_lockstep"]:
        failures.append("strict pipeline sample differs from the lock-step sample")
    ratio = results["relaxed_vs_lockstep_ratio"]
    if ratio < min_ratio:
        failures.append(
            f"relaxed/lock-step throughput ratio {ratio:.3f} below the "
            f"required {min_ratio:g}"
        )
    if not enough_cores:
        print(
            f"  NOTE: only {cpus} usable core(s) < {P + 1}; relaxed >= lock-step gate "
            f"recorded as skipped, conservative floor {MIN_RATIO_FEW_CORES:g} enforced instead"
        )

    if args.update_baseline:
        write_conservative_baseline(
            args.baseline,
            {name: results[name] for name in ("lockstep_items_per_s", "relaxed_items_per_s")},
        )
        print(f"updated baseline {args.baseline}")
    elif not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update-baseline to create one")
        return 1
    else:
        failures.extend(
            compare_to_baseline(results, load_baseline(args.baseline), args.max_regression)
        )

    if failures:
        print("\nBENCHMARK GATE FAILED:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(f"\nall gates passed (relaxed ratio {ratio:.3f} >= {min_ratio:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Observability gates: tracing-off overhead and Chrome-trace validity.

Two properties of the ``repro.obs`` layer are CI-gated here:

* **tracing-off overhead < 2%** — every instrumentation point calls the
  shared :data:`~repro.obs.tracer.NULL_TRACER` when tracing is off, so
  the overhead of an untraced run is (calls per round) x (cost of one
  Null call).  Both factors are measured on the same machine — the call
  count from a traced run of the identical workload (every recorded
  event is one instrumentation call), the per-call cost from a tight
  ``with NULL_TRACER.span(...)`` loop — which makes the gate
  machine-independent: a slow CI runner inflates numerator and
  denominator alike.  The estimate is conservative (three Null calls
  charged per event: constructor plus ``__enter__``/``__exit__``).
* **trace validity** — an exported Chrome trace of a ``p=4`` relaxed
  pipelined run must load as strict JSON, pass the trace-event schema
  check, contain one aligned track per PE plus the coordinator, and —
  together with two small simulated runs (windowed, gather) — cover
  every phase in :data:`repro.runtime.metrics.PHASES`.

The untraced pipelined throughput is additionally gated against the
conservative committed baseline in
``benchmarks/baselines/bench_obs_baseline.json`` (see
``benchmarks/baseline_gate.py``; refresh with ``--update-baseline``),
and the traced run's sample must be byte-identical to the untraced one.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py --output BENCH_obs.json --trace BENCH_obs_trace.json
    PYTHONPATH=src python benchmarks/bench_obs.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
from baseline_gate import compare_to_baseline, load_baseline, write_conservative_baseline
from harness import write_bench_json

from repro.core import DistributedSamplingRun
from repro.obs import TraceCollector, validate_chrome_trace
from repro.obs.tracer import NULL_TRACER
from repro.pipeline import PipelinedSamplingRun
from repro.runtime.metrics import PHASES

ALGORITHM = "ours-8"
K = 1_000
P = 4
BATCH_SIZE = 32_768
ROUNDS = 5
WARMUP_ROUNDS = 1
SEED = 11
#: hard ceiling on the estimated tracing-off overhead fraction
MAX_OFF_OVERHEAD = 0.02
#: Null calls charged per recorded event (span ctor + enter + exit)
CALLS_PER_EVENT = 3
DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "bench_obs_baseline.json"


def null_call_cost(calls: int = 200_000) -> float:
    """Best-of-3 measured seconds per ``with NULL_TRACER.span(...)`` cycle."""
    span = NULL_TRACER.span
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(calls):
            with span("x", cat="bench"):
                pass
        best = min(best, time.perf_counter() - start)
    return best / calls


def _pipelined(trace=None) -> "PipelinedSamplingRun":
    return PipelinedSamplingRun(
        ALGORITHM,
        k=K,
        p=P,
        batch_size=BATCH_SIZE,
        warmup_rounds=WARMUP_ROUNDS,
        seed=SEED,
        comm="process",
        pipeline="relaxed",
        trace=trace,
    )


def _measure_untraced() -> dict:
    with _pipelined() as run:
        metrics = run.run_rounds(ROUNDS)
        sample = np.sort(run.sample_ids())
    return {
        "rounds": metrics.num_rounds,
        "total_items": metrics.total_items,
        "wall_time_s": metrics.wall_time,
        "items_per_s": metrics.wall_throughput_total(),
        "seconds_per_round": metrics.wall_time / max(metrics.num_rounds, 1),
        "_sample": sample,
    }


def _measure_traced(trace_path: Path) -> dict:
    collector = TraceCollector()
    with _pipelined(trace=collector) as run:
        run.run_rounds(ROUNDS)
        sample = np.sort(run.sample_ids())
    trace = collector.chrome_trace()
    collector.export(trace_path)
    events = [e for e in trace["traceEvents"] if e["ph"] != "M"]
    return {
        "trace_path": str(trace_path),
        "events": len(events),
        "events_per_round": len(events) / ROUNDS,
        "tracks": collector.tracks(),
        "clock_offsets_s": {str(r): o for r, o in collector.clock_offsets.items()},
        "_trace": trace,
        "_sample": sample,
    }


def _phase_coverage(traces) -> dict:
    """Which of the paper's PHASES appear as phase spans across traces."""
    seen = set()
    for trace in traces:
        for event in trace["traceEvents"]:
            if event.get("cat") == "phase" and event["name"] in PHASES:
                seen.add(event["name"])
    return {name: (name in seen) for name in PHASES}


def _auxiliary_traces() -> list:
    """Tiny simulated runs covering the phases the pipeline never runs.

    The pipelined workload exercises prepare/insert/select/threshold/
    overlap; ``expire`` needs a sliding window and ``gather`` the
    centralised baseline, so one small simulated run of each fills in
    the remaining PHASES for the coverage gate.
    """
    traces = []
    for kwargs in (
        dict(window=400),  # windowed "ours": insert/expire/select/threshold
        dict(),  # centralised "gather": insert/gather/threshold
    ):
        algorithm = "ours" if "window" in kwargs else "gather"
        collector = TraceCollector()
        with DistributedSamplingRun(
            algorithm, k=50, p=2, batch_size=500, seed=3, trace=collector, **kwargs
        ) as run:
            run.run(3)
        traces.append(collector.chrome_trace())
    return traces


def run_suite(trace_path: Path) -> dict:
    print(f"workload: {ALGORITHM}, k={K}, p={P}, batch={BATCH_SIZE}, rounds={ROUNDS}")
    untraced = _measure_untraced()
    print(f"  untraced: {untraced['items_per_s']:>12,.0f} items/s")
    traced = _measure_traced(trace_path)
    print(
        f"  traced:   {traced['events']} events over {ROUNDS} rounds, "
        f"tracks {traced['tracks']}"
    )

    per_call = null_call_cost()
    estimated = (
        traced["events_per_round"] * CALLS_PER_EVENT * per_call
    ) / untraced["seconds_per_round"]
    print(
        f"  Null call {per_call * 1e9:,.0f} ns x {traced['events_per_round']:.0f} "
        f"events/round x {CALLS_PER_EVENT} -> estimated off-overhead "
        f"{estimated * 100:.4f}% of a {untraced['seconds_per_round'] * 1e3:.1f} ms round"
    )

    coverage = _phase_coverage([traced.pop("_trace")] + _auxiliary_traces())
    print(f"  phase coverage: {coverage}")

    samples_identical = bool(
        np.array_equal(untraced.pop("_sample"), traced.pop("_sample"))
    )
    return {
        "algorithm": ALGORITHM,
        "k": K,
        "p": P,
        "batch_size": BATCH_SIZE,
        "rounds": ROUNDS,
        "untraced": untraced,
        "traced": traced,
        "null_call_cost_s": per_call,
        "calls_per_event_charged": CALLS_PER_EVENT,
        "estimated_off_overhead_fraction": estimated,
        "max_off_overhead_fraction": MAX_OFF_OVERHEAD,
        "phase_coverage": coverage,
        "samples_identical_traced_vs_untraced": samples_identical,
        # flat key for the shared baseline gate
        "untraced_items_per_s": untraced["items_per_s"],
    }


def check_trace_file(path: Path, expected_p: int) -> list:
    """Validate the exported trace file; returns failure messages."""
    failures = []
    try:
        trace = json.loads(path.read_text())
        events = validate_chrome_trace(trace)
    except (OSError, ValueError) as exc:
        return [f"exported trace {path} invalid: {exc}"]
    names = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    expected = {"coordinator"} | {f"pe{r}" for r in range(expected_p)}
    if not expected <= names:
        failures.append(f"trace tracks {sorted(names)} missing {sorted(expected - names)}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_obs.json"))
    parser.add_argument(
        "--trace",
        type=Path,
        default=Path("BENCH_obs_trace.json"),
        metavar="out.json",
        help="where the Chrome trace of the traced run is exported",
    )
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the measured numbers (halved, to stay conservative) as the new baseline",
    )
    args = parser.parse_args(argv)

    results = run_suite(args.trace)
    write_bench_json(args.output, results, bench="bench_obs")

    failures = []
    if results["estimated_off_overhead_fraction"] >= MAX_OFF_OVERHEAD:
        failures.append(
            f"estimated tracing-off overhead "
            f"{results['estimated_off_overhead_fraction'] * 100:.3f}% "
            f">= {MAX_OFF_OVERHEAD * 100:g}% budget"
        )
    if not results["samples_identical_traced_vs_untraced"]:
        failures.append("traced sample differs from the untraced sample")
    missing = [name for name, seen in results["phase_coverage"].items() if not seen]
    if missing:
        failures.append(f"phases never traced: {missing}")
    failures.extend(check_trace_file(args.trace, P))

    if args.update_baseline:
        write_conservative_baseline(
            args.baseline, {"untraced_items_per_s": results["untraced_items_per_s"]}
        )
        print(f"updated baseline {args.baseline}")
    elif not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update-baseline to create one")
        return 1
    else:
        failures.extend(
            compare_to_baseline(results, load_baseline(args.baseline), args.max_regression)
        )

    if failures:
        print("\nBENCHMARK GATE FAILED:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(
        f"\nall gates passed (off-overhead "
        f"{results['estimated_off_overhead_fraction'] * 100:.4f}% < "
        f"{MAX_OFF_OVERHEAD * 100:g}%, trace valid)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Worker-death recovery latency on the real multiprocess backend.

Measures the full recovery cycle — death detection via the process
sentinel, abort-sentinel fan-out, respawn, checkpoint restore on every
PE and replay of the interrupted round — by SIGKILLing a live worker
between rounds and timing the next ``run()`` call, which transparently
recovers before it can make progress.

Gates:

* **byte-identity** — after several injected deaths the final sample
  must equal that of an undisturbed reference run; a recovery that
  loses or duplicates state fails the benchmark outright, regardless
  of speed.
* **recovery throughput** — ``recoveries_per_s`` (1 / mean cycle
  latency) must not regress by more than ``--max-regression`` (default
  2x) against the conservatively committed baseline in
  ``benchmarks/baselines/bench_recovery_baseline.json``
  (see ``benchmarks/baseline_gate.py``; refresh with
  ``--update-baseline``).

Usage::

    PYTHONPATH=src python benchmarks/bench_recovery.py --output BENCH_recovery.json
    PYTHONPATH=src python benchmarks/bench_recovery.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
from baseline_gate import compare_to_baseline, load_baseline, write_conservative_baseline
from harness import write_bench_json

from repro.core.api import DistributedSamplingRun
from repro.network.process_comm import ProcessComm

K = 256
P = 3
BATCH_SIZE = 4_096
WARMUP_ROUNDS = 2
KILL_CYCLES = 4
SEED = 23
#: small timeouts so a lost in-flight message cannot dominate the cycle
COMM_KWARGS = dict(mailbox_timeout=5.0, reply_timeout=60.0)
DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "bench_recovery_baseline.json"

TOTAL_ROUNDS = WARMUP_ROUNDS + 2 * KILL_CYCLES


def _kill_worker(comm: ProcessComm, rank: int) -> None:
    os.kill(comm.worker_pids[rank], signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while comm.workers_alive[rank]:
        if time.monotonic() > deadline:
            raise RuntimeError(f"worker {rank} survived SIGKILL")
        time.sleep(0.005)


def _reference_sample() -> np.ndarray:
    with DistributedSamplingRun(
        "ours", k=K, p=P, batch_size=BATCH_SIZE, seed=SEED, comm="process", **COMM_KWARGS
    ) as run:
        run.run(TOTAL_ROUNDS)
        return np.sort(run.sample_ids())


def run_suite() -> dict:
    print(f"workload: ours, k={K}, p={P}, batch={BATCH_SIZE}, kill cycles={KILL_CYCLES}")
    reference = _reference_sample()

    cycle_times = []
    with tempfile.TemporaryDirectory() as ckpt_dir:
        comm = ProcessComm(P, **COMM_KWARGS)
        try:
            run = DistributedSamplingRun(
                "ours",
                k=K,
                p=P,
                batch_size=BATCH_SIZE,
                seed=SEED,
                comm=comm,
                checkpoint_dir=ckpt_dir,
                checkpoint_every=1,
                max_recoveries=KILL_CYCLES + 1,
            )
            run.run(WARMUP_ROUNDS)
            for cycle in range(KILL_CYCLES):
                rank = cycle % P
                _kill_worker(comm, rank)
                start = time.perf_counter()
                run.run(1)  # detect, respawn, restore, replay + this round
                elapsed = time.perf_counter() - start
                cycle_times.append(elapsed)
                print(f"  cycle {cycle}: killed rank {rank}, recovered in {elapsed * 1e3:.1f} ms")
                run.run(1)  # one undisturbed round between deaths
            recovered_sample = np.sort(run.sample_ids())
            recoveries = run.metrics.recoveries
            run.close()
        finally:
            comm.shutdown()

    mean_cycle_s = sum(cycle_times) / len(cycle_times)
    results = {
        "k": K,
        "p": P,
        "batch_size": BATCH_SIZE,
        "kill_cycles": KILL_CYCLES,
        "cycle_times_s": cycle_times,
        "mean_cycle_s": mean_cycle_s,
        "recoveries_recorded": recoveries,
        "sample_identical_to_reference": bool(np.array_equal(recovered_sample, reference)),
        # flat key for the shared baseline gate (larger is better)
        "recoveries_per_s": 1.0 / mean_cycle_s,
    }
    print(
        f"  mean cycle {mean_cycle_s * 1e3:.1f} ms -> "
        f"{results['recoveries_per_s']:.2f} recoveries/s, "
        f"sample identical: {results['sample_identical_to_reference']}"
    )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_recovery.json"))
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the measured numbers (halved, to stay conservative) as the new baseline",
    )
    args = parser.parse_args(argv)

    results = run_suite()
    write_bench_json(args.output, results, bench="bench_recovery")

    failures = []
    if results["recoveries_recorded"] != KILL_CYCLES:
        failures.append(
            f"expected {KILL_CYCLES} recorded recoveries, got {results['recoveries_recorded']}"
        )
    if not results["sample_identical_to_reference"]:
        failures.append("recovered run's sample differs from the undisturbed reference")

    if args.update_baseline:
        write_conservative_baseline(args.baseline, {"recoveries_per_s": results["recoveries_per_s"]})
        print(f"updated baseline {args.baseline}")
    elif not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update-baseline to create one")
        return 1
    else:
        failures.extend(
            compare_to_baseline(results, load_baseline(args.baseline), args.max_regression)
        )

    if failures:
        print("\nBENCHMARK GATE FAILED:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print("\nall gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

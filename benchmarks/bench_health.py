"""Health-monitoring gates: monitoring-off overhead and stall detection.

Three properties of the live health layer (``repro.obs.health``) are
CI-gated here:

* **monitoring-off overhead < 2%** — with ``health=None`` every kernel
  instrumentation point is one ``state.get("beat")`` returning ``None``
  (see ``repro.core.pe_kernels._beat_phase``), so the overhead of an
  unmonitored run is (beats per round) x (cost of one no-op bracket).
  Both factors are measured on the same machine, mirroring the
  ``bench_obs`` methodology: the beat count from a monitored run of the
  identical workload, the per-bracket cost from a tight no-op
  ``_beat_phase`` loop.  The estimate is conservative — one full no-op
  bracket is charged per *beat*, though each bracket emits two.
* **byte identity** — the final ``sample_ids()`` with monitoring off,
  on, and default must be identical: heartbeats never touch a random
  generator.
* **stall detection latency** — an injected 60 s in-kernel hang under
  ``on_stall="recover"`` must be detected by the watchdog, the hung
  rank (and only it) killed and recovered, the output byte-identical to
  an undisturbed run, and the whole drill finished within a few seconds
  instead of the 60 s the hang would otherwise cost.

The unmonitored throughput is additionally gated against the
conservative committed baseline in
``benchmarks/baselines/bench_health_baseline.json`` (see
``benchmarks/baseline_gate.py``; refresh with ``--update-baseline``).

Usage::

    PYTHONPATH=src python benchmarks/bench_health.py --output BENCH_health.json
    PYTHONPATH=src python benchmarks/bench_health.py --update-baseline
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
from baseline_gate import compare_to_baseline, load_baseline, write_conservative_baseline
from harness import write_bench_json

from repro.core import DistributedSamplingRun
from repro.core.pe_kernels import _beat_phase
from repro.network.process_comm import FaultSpec, ProcessComm
from repro.obs.health import HealthConfig

ALGORITHM = "ours"
K = 1_000
P = 4
BATCH_SIZE = 16_384
ROUNDS = 5
SEED = 11
#: hard ceiling on the estimated monitoring-off overhead fraction
MAX_OFF_OVERHEAD = 0.02
#: hard ceiling on the extra wall time of the watchdog drill vs clean run
MAX_DETECTION_OVERHEAD_S = 8.0
DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "bench_health_baseline.json"

#: the stall drill mirrors tests/fault/test_worker_recovery.TestStallWatchdog
FAST_TIMEOUTS = dict(mailbox_timeout=5.0, reply_timeout=60.0)
WATCHDOG = dict(poll_interval=0.05, min_deadline=0.8, grace=0.2)
HANG = dict(rank=0, action="delay_reply", after_calls=12, seconds=60.0)
DRILL_KWARGS = dict(k=24, p=3, batch_size=150, seed=5)
DRILL_ROUNDS = 6


def null_bracket_cost(calls: int = 200_000) -> float:
    """Best-of-3 measured seconds per no-op ``_beat_phase`` bracket."""
    state: dict = {"beat": None}
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(calls):
            with _beat_phase(state, "insert"):
                pass
        best = min(best, time.perf_counter() - start)
    return best / calls


def _measure(health) -> dict:
    with DistributedSamplingRun(
        ALGORITHM,
        comm="process",
        k=K,
        p=P,
        batch_size=BATCH_SIZE,
        seed=SEED,
        health=health,
    ) as run:
        start = time.perf_counter()
        run.run(ROUNDS)
        wall = time.perf_counter() - start
        sample = np.sort(run.sample_ids())
        heartbeats = 0
        if run.health is not None:
            run.health._drain_once()
            heartbeats = run.health.heartbeats_seen
    metrics = run.metrics
    return {
        "rounds": metrics.num_rounds,
        "total_items": metrics.total_items,
        "wall_time_s": wall,
        "items_per_s": metrics.total_items / max(wall, 1e-9),
        "seconds_per_round": wall / max(metrics.num_rounds, 1),
        "heartbeats": heartbeats,
        "_sample": sample,
    }


def _drill_run(fault, health, checkpoint_dir=None) -> dict:
    comm = ProcessComm(DRILL_KWARGS["p"], fault=fault, **FAST_TIMEOUTS)
    try:
        kwargs = {}
        if checkpoint_dir is not None:
            kwargs = dict(checkpoint_dir=checkpoint_dir, checkpoint_every=2)
        start = time.perf_counter()
        with DistributedSamplingRun(
            ALGORITHM, comm=comm, health=health, **kwargs, **DRILL_KWARGS
        ) as run:
            run.run(DRILL_ROUNDS)
            return {
                "wall_time_s": time.perf_counter() - start,
                "stalls": run.metrics.stalls,
                "recoveries": run.metrics.recoveries,
                "watchdog_kills": run.health.watchdog_kills if run.health else 0,
                "recovered_pes": [
                    r.recovered_pes for r in run.metrics.rounds if r.recovered_pes
                ],
                "_sample": np.sort(run.sample_ids()),
            }
    finally:
        comm.shutdown()


def stall_drill() -> dict:
    """The watchdog acceptance drill: hang, detect, kill, recover, compare."""
    clean = _drill_run(None, None)
    with tempfile.TemporaryDirectory(prefix="bench_health_") as ckdir:
        hung = _drill_run(
            FaultSpec(**HANG),
            HealthConfig(on_stall="recover", **WATCHDOG),
            checkpoint_dir=Path(ckdir),
        )
    identical = bool(np.array_equal(clean.pop("_sample"), hung.pop("_sample")))
    detection_overhead = hung["wall_time_s"] - clean["wall_time_s"]
    return {
        "clean": clean,
        "hung": hung,
        "hang_injected_s": HANG["seconds"],
        "detection_overhead_s": detection_overhead,
        "max_detection_overhead_s": MAX_DETECTION_OVERHEAD_S,
        "samples_identical_after_recovery": identical,
    }


def run_suite() -> dict:
    print(f"workload: {ALGORITHM}, k={K}, p={P}, batch={BATCH_SIZE}, rounds={ROUNDS}")
    off = _measure(None)
    print(f"  health off:     {off['items_per_s']:>12,.0f} items/s")
    on = _measure(True)
    print(
        f"  health on:      {on['items_per_s']:>12,.0f} items/s, "
        f"{on['heartbeats']} heartbeats"
    )
    default = _measure(False)

    per_bracket = null_bracket_cost()
    beats_per_round = on["heartbeats"] / ROUNDS
    estimated = (beats_per_round * per_bracket) / off["seconds_per_round"]
    print(
        f"  no-op bracket {per_bracket * 1e9:,.0f} ns x {beats_per_round:.0f} "
        f"beats/round -> estimated off-overhead {estimated * 100:.4f}% "
        f"of a {off['seconds_per_round'] * 1e3:.1f} ms round"
    )

    samples_identical = bool(
        np.array_equal(off["_sample"], on["_sample"])
        and np.array_equal(off.pop("_sample"), default.pop("_sample"))
    )
    on.pop("_sample")

    drill = stall_drill()
    print(
        f"  stall drill: {drill['hung']['stalls']} stall(s), "
        f"{drill['hung']['watchdog_kills']} kill(s), "
        f"{drill['hung']['recoveries']} recovery(ies) in "
        f"{drill['hung']['wall_time_s']:.2f} s "
        f"(clean run {drill['clean']['wall_time_s']:.2f} s, "
        f"hang injected {drill['hang_injected_s']:.0f} s)"
    )

    return {
        "algorithm": ALGORITHM,
        "k": K,
        "p": P,
        "batch_size": BATCH_SIZE,
        "rounds": ROUNDS,
        "health_off": off,
        "health_on": on,
        "no_op_bracket_cost_s": per_bracket,
        "beats_per_round": beats_per_round,
        "estimated_off_overhead_fraction": estimated,
        "max_off_overhead_fraction": MAX_OFF_OVERHEAD,
        "samples_identical_off_on_default": samples_identical,
        "stall_drill": drill,
        # flat key for the shared baseline gate
        "health_off_items_per_s": off["items_per_s"],
    }


def gate_failures(results: dict) -> list:
    failures = []
    if results["estimated_off_overhead_fraction"] >= MAX_OFF_OVERHEAD:
        failures.append(
            f"estimated monitoring-off overhead "
            f"{results['estimated_off_overhead_fraction'] * 100:.3f}% "
            f">= {MAX_OFF_OVERHEAD * 100:g}% budget"
        )
    if not results["samples_identical_off_on_default"]:
        failures.append("sample differs between health off/on/default")
    if results["health_on"]["heartbeats"] == 0:
        failures.append("monitored run produced no heartbeats")
    drill = results["stall_drill"]
    hung = drill["hung"]
    if hung["stalls"] != 1 or hung["watchdog_kills"] != 1 or hung["recoveries"] != 1:
        failures.append(
            f"stall drill expected 1 stall/kill/recovery, got "
            f"{hung['stalls']}/{hung['watchdog_kills']}/{hung['recoveries']}"
        )
    if hung["recovered_pes"] != [[HANG["rank"]]]:
        failures.append(
            f"watchdog recovered {hung['recovered_pes']}, "
            f"expected only the hung rank {HANG['rank']}"
        )
    if not drill["samples_identical_after_recovery"]:
        failures.append("sample after watchdog recovery differs from undisturbed run")
    if drill["detection_overhead_s"] >= MAX_DETECTION_OVERHEAD_S:
        failures.append(
            f"stall detection+recovery took {drill['detection_overhead_s']:.2f} s extra "
            f">= {MAX_DETECTION_OVERHEAD_S:g} s budget "
            f"(hang injected: {drill['hang_injected_s']:.0f} s)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_health.json"))
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the measured numbers (halved, to stay conservative) as the new baseline",
    )
    args = parser.parse_args(argv)

    results = run_suite()
    write_bench_json(args.output, results, bench="bench_health")

    failures = gate_failures(results)

    if args.update_baseline:
        write_conservative_baseline(
            args.baseline, {"health_off_items_per_s": results["health_off_items_per_s"]}
        )
        print(f"updated baseline {args.baseline}")
    elif not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update-baseline to create one")
        return 1
    else:
        failures.extend(
            compare_to_baseline(results, load_baseline(args.baseline), args.max_regression)
        )

    if failures:
        print("\nBENCHMARK GATE FAILED:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(
        f"\nall gates passed (off-overhead "
        f"{results['estimated_off_overhead_fraction'] * 100:.4f}% < "
        f"{MAX_OFF_OVERHEAD * 100:g}%, stall detected and recovered in "
        f"{results['stall_drill']['hung']['wall_time_s']:.2f} s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Gather-heavy microbenchmark: shared-memory vs. pickled payloads.

The centralized baseline ("gather", paper Section 4.5) ships every PE's
surviving candidates to the root each round — the communication pattern
the paper's distributed algorithm exists to avoid, and the one that
benefits most from the :class:`~repro.network.process_comm.ProcessComm`
shared-memory payload transport.  This benchmark drives the centralized
sampler through ``process_round(batches)`` (so the coordinator-to-worker
batch shipping exercises the shm path too) under both transports and
compares the measured **gather phase** time from the wall-clock ledger.
Results go to ``BENCH_gather.json``.

Gates:

* **sample identity** — both transports must produce byte-identical
  samples (the transport must never change values); enforced always.
* **shm gather speedup** — with at least 4 usable CPU cores the shm
  transport's gather phase must be at least ``MIN_GATHER_SPEEDUP`` (1.3x)
  faster than the pickle transport at ``p=4``.  On fewer cores the gate is
  recorded as skipped (pass ``--require-speedup`` to enforce regardless);
  in practice the win is serialization-bound and shows on single-core
  machines too.
* **shm gather throughput** — the measured gather-phase item rate under
  the shm transport must not regress by more than ``--max-regression``
  (default 2x) against the conservative committed baseline in
  ``benchmarks/baselines/bench_gather_baseline.json``.  This gate runs on
  every machine, following the ``baseline_gate.py`` convention; refresh
  with ``--update-baseline`` after an intentional perf change.

Usage::

    PYTHONPATH=src python benchmarks/bench_gather.py --output BENCH_gather.json
    PYTHONPATH=src python benchmarks/bench_gather.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
from baseline_gate import compare_to_baseline, load_baseline, write_conservative_baseline
from harness import write_bench_json
from bench_parallel_scaling import usable_cpus

from repro.core.centralized import CentralizedGatherSampler
from repro.network import ProcessComm
from repro.stream import MiniBatchStream

#: large sample size => large per-round candidate payloads at the root
#: (the regime where the centralized baseline stops scaling, Figures 3/4)
K = 50_000
P = 4
BATCH_SIZE = 100_000
ROUNDS = 4
SEED = 11
#: required shm-vs-pickle speedup of the gather phase (enforced with >= 4 cores)
MIN_GATHER_SPEEDUP = 1.3
DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "bench_gather_baseline.json"


def run_transport(transport: str) -> dict:
    """Run the centralized sampler under one payload transport."""
    with ProcessComm(P, payload_transport=transport) as comm:
        sampler = CentralizedGatherSampler(K, comm, seed=SEED)
        stream = MiniBatchStream(P, BATCH_SIZE, seed=SEED + 1)
        candidates = 0
        start = time.perf_counter()
        for _ in range(ROUNDS):
            metrics = sampler.process_round(stream.next_round().batches)
            candidates += metrics.candidates_gathered
        wall = time.perf_counter() - start
        by_phase = comm.ledger.time_by_phase()
        sample = np.sort(sampler.sample_ids())
    gather_time = by_phase.get("gather", 0.0)
    return {
        "transport": transport,
        "p": P,
        "k": K,
        "rounds": ROUNDS,
        "batch_size": BATCH_SIZE,
        "candidates_gathered": candidates,
        "gather_phase_s": gather_time,
        "insert_phase_s": by_phase.get("insert", 0.0),
        "wall_time_s": wall,
        "gather_candidates_per_s": candidates / gather_time if gather_time > 0 else 0.0,
        "_sample": sample,
    }


def run_suite() -> dict:
    results = {"k": K, "p": P, "batch_size": BATCH_SIZE, "rounds": ROUNDS, "usable_cpus": usable_cpus()}
    runs = {}
    for transport in ("pickle", "shm"):
        measured = run_transport(transport)
        runs[transport] = measured
        results[transport] = {k: v for k, v in measured.items() if not k.startswith("_")}
        print(
            f"  {transport:>6}: gather {measured['gather_phase_s'] * 1e3:8.1f} ms "
            f"({measured['gather_candidates_per_s']:>12,.0f} candidates/s), "
            f"wall {measured['wall_time_s']:.2f} s"
        )
    results["samples_identical"] = bool(
        np.array_equal(runs["pickle"]["_sample"], runs["shm"]["_sample"])
    )
    shm_gather = runs["shm"]["gather_phase_s"]
    results["gather_speedup_shm_vs_pickle"] = (
        runs["pickle"]["gather_phase_s"] / shm_gather if shm_gather > 0 else 0.0
    )
    print(f"  samples identical across transports: {results['samples_identical']}")
    print(f"  gather-phase speedup (shm vs pickle): {results['gather_speedup_shm_vs_pickle']:.2f}x")
    return results


def evaluate_gate(
    results: dict, *, require_speedup: bool, baseline: Path, max_regression: float
) -> list:
    """Failure messages (empty = pass)."""
    failures = []
    if not results["samples_identical"]:
        failures.append("pickle and shm transports produced different samples for the same seed")

    speedup = results["gather_speedup_shm_vs_pickle"]
    cpus = results["usable_cpus"]
    if cpus >= 4 or require_speedup:
        if speedup < MIN_GATHER_SPEEDUP:
            failures.append(
                f"shm gather-phase speedup is {speedup:.2f}x, below the required "
                f"{MIN_GATHER_SPEEDUP:g}x ({cpus} usable cores)"
            )
    else:
        results["speedup_gate"] = (
            f"skipped: only {cpus} usable core(s); needs >= 4 for the contended-gather gate"
        )
        print(f"  speedup gate {results['speedup_gate']}")

    # shm gather throughput gate (runs on every machine)
    measured = results["shm"]["gather_candidates_per_s"]
    if not baseline.exists():
        failures.append(f"no gather baseline at {baseline}; record one with --update-baseline")
    else:
        reference = load_baseline(baseline)
        results["shm_gather_baseline"] = reference["shm_gather_candidates_per_s"]
        gate_failures = compare_to_baseline(
            {"shm_gather_candidates_per_s": measured}, reference, max_regression
        )
        failures.extend(gate_failures)
        if not gate_failures:
            print(
                f"  shm gather throughput gate: {measured:,.0f} candidates/s >= "
                f"{results['shm_gather_baseline']:,.0f} / {max_regression:g} baseline"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_gather.json"))
    parser.add_argument(
        "--require-speedup",
        action="store_true",
        help="enforce the shm gather speedup gate even on machines with fewer than 4 cores",
    )
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the measured shm gather throughput (halved, conservative) as the new baseline",
    )
    args = parser.parse_args(argv)

    print(f"centralized gather: k={K}, p={P}, batch={BATCH_SIZE}, rounds={ROUNDS}")
    results = run_suite()
    if args.update_baseline:
        write_conservative_baseline(
            args.baseline,
            {"shm_gather_candidates_per_s": results["shm"]["gather_candidates_per_s"]},
        )
        print(f"updated baseline {args.baseline}")
        write_bench_json(args.output, results, bench="bench_gather")
        return 0
    failures = evaluate_gate(
        results,
        require_speedup=args.require_speedup,
        baseline=args.baseline,
        max_regression=args.max_regression,
    )
    write_bench_json(args.output, results, bench="bench_gather")

    if failures:
        print("\nGATHER TRANSPORT GATE FAILED:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ingest-throughput gate for the sibling summaries (``repro.summaries``).

One benchmark per summary family — exact weighted top-k, streaming
quantile cursors, Misra–Gries heavy hitters with engine-backed pruning,
and the recency-boosted reservoir — each driven by the corpus-replay
stream (``repro.stream.CorpusReplayStream``: real scraped document
lengths when the corpus directory exists, the deterministic synthetic
corpus everywhere else) on the real multiprocess backend at ``p = 4``.

Correctness is asserted inline on the benchmarked stream (top-k equals
brute force, the quantile cursors respect their rank-error bound), and
the measured throughputs are gated against the conservative committed
baseline in ``benchmarks/baselines/bench_summaries_baseline.json``
(see ``benchmarks/baseline_gate.py``; refresh with ``--update-baseline``).

Usage::

    PYTHONPATH=src python benchmarks/bench_summaries.py --output BENCH_summaries.json
    PYTHONPATH=src python benchmarks/bench_summaries.py --update-baseline
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np
from baseline_gate import compare_to_baseline, load_baseline, write_conservative_baseline
from harness import write_bench_json

from repro.stream.corpus import CorpusReplayStream
from repro.summaries import (
    DistributedTopK,
    HeavyHitters,
    RecencyReservoir,
    StreamingQuantiles,
)

P = 4
BATCH = 4096  # per PE per round
ROUNDS = 6
SEED = 19
TOPK_K = 256
QUANTILE_PHIS = (0.5, 0.9, 0.99)
QUANTILE_EPS = 0.01
HH_K = 32
HH_UNIVERSE = 1500  # documents folded onto a skewed id universe
RECENCY_K = 256
RECENCY_R = 1.02
DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "bench_summaries_baseline.json"


def replay_rounds():
    """The benchmark stream, materialised once so every sibling sees it."""
    stream = CorpusReplayStream(P, BATCH, seed=SEED)
    rounds = []
    for round_batches in stream.rounds(ROUNDS):
        rounds.append([(batch.ids, batch.weights) for batch in round_batches.batches])
    return stream.source, rounds


def _drive(summary, rounds, transform=None):
    """Feed all rounds, returning (wall seconds, items ingested)."""
    items = 0
    start = time.perf_counter()
    for per_pe in rounds:
        batches = [transform(ids, weights) if transform else (ids, weights) for ids, weights in per_pe]
        summary.process_round(batches)
        items += sum(ids.shape[0] for ids, _ in batches)
    return time.perf_counter() - start, items


def bench_topk(rounds) -> dict:
    with DistributedTopK(TOPK_K, "process", p=P, seed=SEED) as summary:
        wall, items = _drive(summary, rounds)
        answer = summary.top_k()
    all_ids = np.concatenate([ids for per_pe in rounds for ids, _ in per_pe])
    all_weights = np.concatenate([w for per_pe in rounds for _, w in per_pe])
    order = np.lexsort((all_ids, -all_weights))
    expected = [(int(all_ids[i]), float(all_weights[i])) for i in order[:TOPK_K]]
    return {
        "items_per_s": items / max(wall, 1e-9),
        "wall_time_s": wall,
        "items": items,
        "exact_vs_brute_force": answer == expected,
    }


def bench_quantiles(rounds) -> dict:
    with StreamingQuantiles(
        QUANTILE_PHIS, "process", p=P, eps=QUANTILE_EPS, seed=SEED
    ) as summary:
        wall, items = _drive(summary, rounds)
        estimates = summary.quantiles()
        reselections = summary.reselections
    values = np.sort(np.concatenate([w for per_pe in rounds for _, w in per_pe]))
    within_bound = True
    for phi, estimate in estimates.items():
        rank = int(np.searchsorted(values, estimate, side="right"))
        target = max(1, int(np.ceil(phi * values.shape[0])))
        within_bound &= abs(rank - target) <= QUANTILE_EPS * values.shape[0] + 1
    return {
        "items_per_s": items / max(wall, 1e-9),
        "wall_time_s": wall,
        "items": items,
        "reselections": reselections,
        "rank_error_within_eps": bool(within_bound),
    }


def bench_heavy(rounds) -> dict:
    def as_counts(ids, weights):
        # fold the id space so ids repeat; the heavy-tailed document
        # lengths are the count increments, so the counters are skewed
        return (ids % HH_UNIVERSE).astype(np.int64), weights

    with HeavyHitters(
        HH_K, "process", p=P, capacity=8 * HH_K, prune_every=2, seed=SEED
    ) as summary:
        wall, items = _drive(summary, rounds, transform=as_counts)
        top = summary.top(5)
        pruned = summary.pruned_total
    return {
        "items_per_s": items / max(wall, 1e-9),
        "wall_time_s": wall,
        "items": items,
        "pruned_total": pruned,
        "reported_top5": [int(item) for item, _ in top],
    }


def bench_recency(rounds) -> dict:
    with RecencyReservoir(RECENCY_K, "process", p=P, recency=RECENCY_R, seed=SEED) as summary:
        wall, items = _drive(summary, rounds)
        sample_size = summary.sample_size()
    return {
        "items_per_s": items / max(wall, 1e-9),
        "wall_time_s": wall,
        "items": items,
        "sample_size": sample_size,
    }


def run_suite() -> dict:
    source, rounds = replay_rounds()
    total = sum(ids.shape[0] for per_pe in rounds for ids, _ in per_pe)
    print(f"corpus source: {source}; p={P}, batch={BATCH}/PE, rounds={ROUNDS}, items={total:,}")
    results = {"corpus_source": source, "p": P, "batch_size": BATCH, "rounds": ROUNDS}
    for name, bench in [
        ("topk", bench_topk),
        ("quantiles", bench_quantiles),
        ("heavy_hitters", bench_heavy),
        ("recency", bench_recency),
    ]:
        results[name] = bench(rounds)
        print(f"  {name:>14}: {results[name]['items_per_s']:>12,.0f} items/s")
        # flat keys for the shared baseline gate
        results[f"{name}_items_per_s"] = results[name]["items_per_s"]
    return results


def gate_failures(results: dict) -> list:
    failures = []
    if not results["topk"]["exact_vs_brute_force"]:
        failures.append("top-k answer differs from brute force on the benchmark stream")
    if not results["quantiles"]["rank_error_within_eps"]:
        failures.append("a quantile cursor violates its rank-error bound")
    if results["recency"]["sample_size"] != RECENCY_K:
        failures.append(
            f"recency sample holds {results['recency']['sample_size']} items, "
            f"expected {RECENCY_K}"
        )
    if results["heavy_hitters"]["pruned_total"] <= 0:
        failures.append("engine-backed candidate prune never fired")
    return failures


BASELINE_KEYS = [
    "topk_items_per_s",
    "quantiles_items_per_s",
    "heavy_hitters_items_per_s",
    "recency_items_per_s",
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_summaries.json"))
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the measured numbers (halved, to stay conservative) as the new baseline",
    )
    args = parser.parse_args(argv)

    results = run_suite()
    write_bench_json(args.output, results, bench="bench_summaries")

    failures = gate_failures(results)

    if args.update_baseline:
        write_conservative_baseline(
            args.baseline, {key: results[key] for key in BASELINE_KEYS}
        )
        print(f"updated baseline {args.baseline}")
    elif not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update-baseline to create one")
        return 1
    else:
        failures.extend(
            compare_to_baseline(results, load_baseline(args.baseline), args.max_regression)
        )

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nall summary gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

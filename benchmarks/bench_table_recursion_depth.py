"""Section 6.3 — selection recursion depth and selection-time improvements.

The paper quotes, for the weak-scaling experiments, the average recursion
depth of the distributed selection with one pivot vs. eight pivots and the
resulting selection-time improvement:

=========  ==============  ==============  =======================
sample k   depth (1 pivot) depth (8 pivots) selection time saving
=========  ==============  ==============  =======================
1e5        7.3             2.7             up to 25 %
1e4        4.3             1.8             about 17 %
1e3        1.9             1.1             no significant change
=========  ==============  ==============  =======================

This benchmark reproduces the same table from the scaled weak-scaling sweep
(largest node count, largest per-PE batch size) and checks the qualitative
claims: the depth reduction is large (>= 1.5x) for the larger sample sizes
and the single-pivot depth grows with k.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table

from harness import weak_scaling_result, write_result


@pytest.mark.benchmark(group="table-recursion-depth")
def test_recursion_depth_and_selection_time(benchmark, scale, config):
    result = benchmark.pedantic(weak_scaling_result, args=(scale,), rounds=1, iterations=1)

    nodes = max(config.node_counts)
    batch = max(config.weak_batch_sizes)
    rows = []
    for k in sorted(config.sample_sizes, reverse=True):
        depth_single = result.selection_depth("ours", k, batch, nodes)
        depth_multi = result.selection_depth("ours-8", k, batch, nodes)
        time_single = result.selection_time("ours", k, batch, nodes)
        time_multi = result.selection_time("ours-8", k, batch, nodes)
        saving = 1.0 - time_multi / time_single if time_single > 0 else 0.0
        rows.append(
            [
                k,
                depth_single,
                depth_multi,
                depth_single / depth_multi if depth_multi else float("inf"),
                saving * 100.0,
            ]
        )
    table = format_table(
        ["k", "depth ours", "depth ours-8", "depth ratio", "selection time saving %"],
        rows,
        precision=2,
    )
    write_result(
        "table_recursion_depth.txt",
        f"Selection recursion depth, weak scaling, {nodes} nodes, b = {batch}\n{table}",
    )

    if scale == "smoke":
        # With the tiny smoke sample sizes, selections often terminate before
        # the first pivot round, so depth comparisons are meaningless there.
        return

    # ---- qualitative checks against the paper's Section 6.3 -----------
    depths = {k: (result.selection_depth("ours", k, batch, nodes),
                  result.selection_depth("ours-8", k, batch, nodes))
              for k in config.sample_sizes}
    k_sorted = sorted(config.sample_sizes)
    # single-pivot depth grows with the sample size
    assert depths[k_sorted[-1]][0] > depths[k_sorted[0]][0]
    # eight pivots reduce the depth substantially for the largest k
    single, multi = depths[k_sorted[-1]]
    assert single / max(multi, 1e-9) >= 1.5
    # and never increase it
    for k in k_sorted:
        assert depths[k][1] <= depths[k][0] + 1e-9

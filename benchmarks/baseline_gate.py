"""Shared baseline machinery for the benchmark regression gates.

Three benchmark entry points (``bench_smoke.py``, ``bench_window.py``,
``bench_parallel_scaling.py``) gate measured throughputs against a
checked-in JSON baseline with the same convention: baselines are recorded
*conservatively* (half of the measured value, so slower CI runners do not
false-fail) and a run fails when a measurement drops below
``baseline / max_regression``.  This module is the single implementation
of that convention.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List

__all__ = ["best_of", "write_conservative_baseline", "load_baseline", "compare_to_baseline"]

#: fraction of the measured value recorded as the baseline
CONSERVATIVE_FACTOR = 0.5


def best_of(fn: Callable[[], object], *, repeats: int = 5) -> float:
    """Best (smallest) wall-clock seconds of ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def write_conservative_baseline(
    path: Path, results: Dict[str, float], *, keep_exact: Iterable[str] = ()
) -> Dict[str, float]:
    """Record ``results`` as the new baseline, halved to stay conservative.

    Metric names in ``keep_exact`` (machine-independent ratios such as
    store speedups) are written unchanged.  Returns the written mapping.
    """
    keep_exact = set(keep_exact)
    conservative = {
        name: (value if name in keep_exact else value * CONSERVATIVE_FACTOR)
        for name, value in results.items()
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(conservative, indent=2, sort_keys=True, allow_nan=False) + "\n")
    return conservative


def load_baseline(path: Path) -> Dict[str, float]:
    return json.loads(path.read_text())


def compare_to_baseline(
    results: Dict[str, float],
    baseline: Dict[str, float],
    max_regression: float,
    *,
    skip: Iterable[str] = (),
) -> List[str]:
    """Regression messages (empty = pass).

    Every metric in ``baseline`` (except the names in ``skip``, which the
    caller gates separately) must be present in ``results`` and must not
    fall below ``baseline / max_regression``.
    """
    skip = set(skip)
    failures = []
    for name, reference in baseline.items():
        if name in skip:
            continue
        measured = results.get(name)
        if measured is None:
            failures.append(f"{name}: missing from results")
        elif measured < reference / max_regression:
            failures.append(
                f"{name}: {measured:,.0f} is a >{max_regression:g}x regression "
                f"vs. baseline {reference:,.0f}"
            )
    return failures

"""Wall-clock scaling of the real multiprocess execution backend.

Runs the distributed sampler under :class:`repro.network.ProcessComm` with
``p`` real worker processes (each generating and ingesting its own stream
shard) and measures *actual* wall-clock throughput — the reproduction's
analogue of the paper's real-machine runs, next to the cost-model curves
of ``bench_fig3/4``.  Results go to ``BENCH_parallel.json``:

* per-``p`` wall-clock throughput (items/s) and per-round latency,
* speedup relative to ``p=1`` (the paper's Figure 4 axis),
* a simulated-backend reference point at the same workload,
* a sample-equality check between the two backends (byte-identical ids).

Gates:

* **speedup** — with at least 4 usable CPU cores, the ``p=4``
  configuration must achieve a speedup of at least ``MIN_SPEEDUP_AT_4``
  (1.5x) over ``p=1``.  On machines with fewer cores (e.g. single-core CI
  sandboxes) real speedup is physically impossible, so this gate is
  recorded as skipped instead of failing; pass ``--require-speedup`` to
  enforce it regardless.
* **single-core throughput** — the measured ``p=1`` wall-clock throughput
  must not regress by more than ``--max-regression`` (default 2x) against
  the checked-in baseline in
  ``benchmarks/baselines/bench_parallel_baseline.json``.  This gate runs
  on *every* machine, so the benchmark job exercises a real acceptance
  check even on single-core runners where the speedup gate skips.  The
  baseline is recorded conservatively (half of the measured throughput);
  refresh it after an intentional perf change with ``--update-baseline``.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --output BENCH_parallel.json
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np
from baseline_gate import compare_to_baseline, load_baseline, write_conservative_baseline
from harness import write_bench_json

from repro.runtime import ParallelStreamingRun

#: default workload: "ours-8" keeps the selection recursion shallow (~2-3
#: rounds), which minimises coordinator round trips per mini-batch; the
#: batch size is large enough that per-PE local work dominates.
ALGORITHM = "ours-8"
K = 1_000
BATCH_SIZE = 131_072
ROUNDS = 8
WARMUP_ROUNDS = 2
PE_COUNTS = (1, 2, 4)
#: acceptance gate (enforced when enough cores are available)
MIN_SPEEDUP_AT_4 = 1.5
#: conservative single-core wall-throughput baseline (gated on every machine)
DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "bench_parallel_baseline.json"


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_backend(
    comm: str, p: int, *, rounds: int = ROUNDS, seed: int = 7, **comm_kwargs
) -> dict:
    """One measured configuration; returns throughput plus the sample ids."""
    start = time.perf_counter()
    with ParallelStreamingRun(
        ALGORITHM,
        k=K,
        p=p,
        comm=comm,
        batch_size=BATCH_SIZE,
        warmup_rounds=WARMUP_ROUNDS,
        seed=seed,
        **comm_kwargs,
    ) as run:
        metrics = run.run_rounds(rounds)
        sample = np.sort(run.sample_ids())
    return {
        "comm": comm,
        "p": p,
        "kernel_tier": metrics.kernel_tier,
        "rounds": metrics.num_rounds,
        "batch_size": BATCH_SIZE,
        "total_items": metrics.total_items,
        "wall_time_s": metrics.wall_time,
        "wall_throughput_items_per_s": metrics.wall_throughput_total(),
        "wall_throughput_per_pe": metrics.wall_throughput_per_pe(),
        "seconds_per_round": metrics.wall_time / max(metrics.num_rounds, 1),
        "setup_plus_run_s": time.perf_counter() - start,
        "_sample": sample,
    }


def run_suite() -> dict:
    cpus = usable_cpus()
    results = {
        "algorithm": ALGORITHM,
        "k": K,
        "batch_size": BATCH_SIZE,
        "rounds": ROUNDS,
        "warmup_rounds": WARMUP_ROUNDS,
        "usable_cpus": cpus,
        "process": [],
    }

    process_runs = {}
    for p in PE_COUNTS:
        measured = run_backend("process", p)
        process_runs[p] = measured
        print(
            f"  process p={p}: {measured['wall_throughput_items_per_s']:>12,.0f} items/s "
            f"({measured['seconds_per_round'] * 1e3:.1f} ms/round)"
        )

    base = process_runs[1]["wall_throughput_items_per_s"]
    for p in PE_COUNTS:
        entry = {k: v for k, v in process_runs[p].items() if not k.startswith("_")}
        entry["speedup_vs_p1"] = process_runs[p]["wall_throughput_items_per_s"] / base
        results["process"].append(entry)

    # simulated-backend reference at the largest p (throughput of the
    # driver loop itself, and the byte-identical sample check)
    p_ref = PE_COUNTS[-1]
    sim = run_backend("sim", p_ref)
    results["sim_reference"] = {k: v for k, v in sim.items() if not k.startswith("_")}
    results["samples_identical"] = bool(
        np.array_equal(sim["_sample"], process_runs[p_ref]["_sample"])
    )
    print(f"  sim reference p={p_ref}: {sim['wall_throughput_items_per_s']:>12,.0f} items/s")
    print(f"  samples identical across backends: {results['samples_identical']}")

    # shared-memory transport reference at the largest p (informational —
    # this workload's select-phase payloads are small, so the win lives in
    # bench_gather.py — but the samples must stay byte-identical and the
    # number is recorded to track the transport's overhead here)
    shm = run_backend("process", p_ref, payload_transport="shm")
    results["shm_reference"] = {k: v for k, v in shm.items() if not k.startswith("_")}
    results["shm_reference"]["payload_transport"] = "shm"
    results["samples_identical_shm"] = bool(
        np.array_equal(shm["_sample"], process_runs[p_ref]["_sample"])
    )
    print(f"  shm transport p={p_ref}: {shm['wall_throughput_items_per_s']:>12,.0f} items/s")
    print(f"  samples identical across transports: {results['samples_identical_shm']}")
    return results


def evaluate_gate(
    results: dict, *, require_speedup: bool, baseline: Path, max_regression: float
) -> list:
    """Failure messages (empty = pass)."""
    failures = []
    if not results["samples_identical"]:
        failures.append("sim and process backends produced different samples for the same seed")
    if not results.get("samples_identical_shm", True):
        failures.append("shm payload transport changed the samples (transport must be value-neutral)")
    by_p = {entry["p"]: entry for entry in results["process"]}
    speedup = by_p.get(4, {}).get("speedup_vs_p1", 0.0)
    cpus = results["usable_cpus"]
    if cpus >= 4 or require_speedup:
        if speedup < MIN_SPEEDUP_AT_4:
            failures.append(
                f"speedup at p=4 is {speedup:.2f}x, below the required "
                f"{MIN_SPEEDUP_AT_4:g}x ({cpus} usable cores)"
            )
    else:
        results["speedup_gate"] = (
            f"skipped: only {cpus} usable core(s); needs >= 4 for a meaningful speedup gate"
        )
        print(f"  speedup gate {results['speedup_gate']}")

    # single-core wall-throughput regression gate (runs on every machine)
    measured_p1 = by_p.get(1, {}).get("wall_throughput_items_per_s", 0.0)
    if not baseline.exists():
        failures.append(
            f"no single-core baseline at {baseline}; record one with --update-baseline"
        )
    else:
        reference = load_baseline(baseline)
        results["p1_throughput_baseline"] = reference["p1_wall_throughput_items_per_s"]
        p1_failures = compare_to_baseline(
            {"p1_wall_throughput_items_per_s": measured_p1}, reference, max_regression
        )
        failures.extend(p1_failures)
        if not p1_failures:
            print(
                f"  p=1 throughput gate: {measured_p1:,.0f} items/s >= "
                f"{results['p1_throughput_baseline']:,.0f} / {max_regression:g} items/s baseline"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_parallel.json"))
    parser.add_argument(
        "--require-speedup",
        action="store_true",
        help="enforce the p=4 speedup gate even on machines with fewer than 4 cores",
    )
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the measured p=1 throughput (halved, conservative) as the new baseline",
    )
    args = parser.parse_args(argv)

    print(f"parallel scaling: {ALGORITHM}, k={K}, batch={BATCH_SIZE}, rounds={ROUNDS}")
    results = run_suite()
    if args.update_baseline:
        by_p = {entry["p"]: entry for entry in results["process"]}
        write_conservative_baseline(
            args.baseline,
            {"p1_wall_throughput_items_per_s": by_p[1]["wall_throughput_items_per_s"]},
        )
        print(f"updated baseline {args.baseline}")
        write_bench_json(args.output, results, bench="bench_parallel_scaling")
        return 0
    failures = evaluate_gate(
        results,
        require_speedup=args.require_speedup,
        baseline=args.baseline,
        max_regression=args.max_regression,
    )
    by_p = {entry["p"]: entry for entry in results["process"]}
    for p in PE_COUNTS:
        print(f"  speedup p={p}: {by_p[p]['speedup_vs_p1']:.2f}x")

    write_bench_json(args.output, results, bench="bench_parallel_scaling")

    if failures:
        print("\nPARALLEL SCALING GATE FAILED:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 4 — strong scaling speedups.

Paper setup: total batch sizes B1 = 2^10*1e4, B2 = 2^10*1e5, B3 = 2^10*1e6
items per round (divided evenly over the PEs), sample sizes k in
{1e3, 1e4, 1e5}; speedups relative to ``ours`` on one node.

Expected qualitative shape (checked by assertions):
* speedups rise steeply — super-linearly for the smaller total batches —
  once the per-PE batch drops below the modelled cache capacity;
* after the cache transition the curves flatten as the selection latency
  (O(log^2 kp) messages) starts to dominate;
* ``gather`` stops scaling for the largest sample size.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_series_table

from harness import strong_scaling_result, write_result


@pytest.mark.benchmark(group="fig4-strong-scaling")
def test_fig4_strong_scaling(benchmark, scale, config):
    result = benchmark.pedantic(strong_scaling_result, args=(scale,), rounds=1, iterations=1)

    sections = []
    for total in config.strong_total_batches:
        series = {}
        for k in config.sample_sizes:
            for algorithm in config.algorithms:
                series[f"{algorithm} k={k}"] = result.speedups(algorithm, k, total)
        table = format_series_table(series, x_label="nodes")
        sections.append(f"Strong scaling, total batch B = {total} items per round\n{table}")
    write_result("fig4_strong_scaling.txt", "\n\n".join(sections))


    if scale == "smoke":
        # The smoke sweep is too small for the paper's crossovers (gather is
        # legitimately competitive for tiny sample sizes); the qualitative
        # shape checks below are only meaningful at default/full scale.
        return

    # ---- qualitative shape checks -------------------------------------
    nodes = sorted(config.node_counts)
    nodes_max = nodes[-1]
    k_small, k_large = min(config.sample_sizes), max(config.sample_sizes)
    total_mid = sorted(config.strong_total_batches)[len(config.strong_total_batches) // 2]

    # cache transition: somewhere along the sweep the speedup jump between
    # consecutive node counts exceeds the PE-count ratio (super-linear step)
    ours = result.speedups("ours", k_small, total_mid)
    jumps = [ours[b] / ours[a] for a, b in zip(nodes, nodes[1:])]
    ratios = [b / a for a, b in zip(nodes, nodes[1:])]
    assert any(jump > ratio for jump, ratio in zip(jumps, ratios)), (jumps, ratios)

    # gather stops scaling for the largest k while ours keeps going
    total_large = max(config.strong_total_batches)
    gather_large = result.speedups("gather", k_large, total_large)
    ours8_large = result.speedups("ours-8", k_large, total_large)
    assert ours8_large[nodes_max] > 1.5 * gather_large[nodes_max]

    # speedups grow with node count for our algorithm in every configuration
    for k in config.sample_sizes:
        for total in config.strong_total_batches:
            series = result.speedups("ours", k, total)
            assert series[nodes_max] > series[nodes[0]]

"""Pytest fixtures of the benchmark harness (see harness.py for the helpers)."""

from __future__ import annotations

import pytest

from harness import bench_scale, scaling_config


@pytest.fixture(scope="session")
def scale() -> str:
    """Sweep size selected through the REPRO_BENCH_SCALE environment variable."""
    return bench_scale()


@pytest.fixture(scope="session")
def config(scale):
    """The :class:`repro.analysis.ScalingConfig` of the selected scale."""
    return scaling_config(scale)

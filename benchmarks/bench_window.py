"""CI benchmark smoke for the windowed samplers, with a regression gate.

Measures steady-state ingestion throughput (items/s) of

* the unbounded sequential sampler on the merge store (the reference),
* the sequential sliding-window sampler (suffix-top-k candidate buffer),
* the exponential time-decay sampler (log-space keys + merge store), and
* one full round of the distributed sliding-window sampler (simulated
  backend, including eviction and threshold recomputation),

writes the numbers to a JSON file (uploaded as a CI artifact) and fails
when any of them regressed by more than ``--max-regression`` (default 2x)
against the checked-in baseline in
``benchmarks/baselines/bench_window_baseline.json``.  Baseline numbers are
recorded conservatively (half of the measured throughput) so slower CI
runners do not false-fail.

The windowed-vs-unbounded throughput *ratio* is reported for context but
not hard-gated: the window pays for dense key generation (no exponential
jumps are possible under expiry) plus the candidate-buffer scan, so it is
expected to ingest slower than the unbounded fast path.

Usage::

    PYTHONPATH=src python benchmarks/bench_window.py --output BENCH_window.json
    PYTHONPATH=src python benchmarks/bench_window.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
from baseline_gate import (
    best_of,
    compare_to_baseline,
    load_baseline,
    write_conservative_baseline,
)
from harness import write_bench_json

from repro.core import ReservoirSampler, make_distributed_sampler
from repro.network import SimComm
from repro.stream import ItemBatch, TimestampedMiniBatchStream

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "bench_window_baseline.json"

K = 256
BATCH = 8_192
WINDOW = 4 * BATCH
N_BATCHES = 8


def _batches(n_batches: int = N_BATCHES, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        ItemBatch(
            ids=np.arange(i * BATCH, (i + 1) * BATCH),
            weights=rng.uniform(0.1, 100.0, BATCH),
        )
        for i in range(n_batches)
    ]


def _ingest_throughput(make_sampler, *, repeats: int = 3) -> float:
    batches = _batches()
    warmup = _batches(2, seed=1)
    best = float("inf")
    for _ in range(repeats):
        sampler = make_sampler()
        for batch in warmup:  # reach the steady state outside the timed region
            sampler.feed_batch(batch)
        start = time.perf_counter()
        for batch in batches:
            sampler.feed_batch(batch)
        best = min(best, time.perf_counter() - start)
    return N_BATCHES * BATCH / best


def bench_sequential() -> dict:
    unbounded = _ingest_throughput(lambda: ReservoirSampler(K, seed=7, store="merge"))
    windowed = _ingest_throughput(lambda: ReservoirSampler(K, seed=7, window=WINDOW))
    decayed = _ingest_throughput(lambda: ReservoirSampler(K, seed=7, decay=0.9999))
    return {
        "unbounded_ingest_items_per_s": unbounded,
        "window_ingest_items_per_s": windowed,
        "decayed_ingest_items_per_s": decayed,
        "window_vs_unbounded_ratio": windowed / unbounded,
    }


def bench_distributed_window_round() -> float:
    """Full distributed windowed round (insert + expire + select), items/s."""
    p, k, batch, repeats, rounds_per_repeat = 4, 256, 1_024, 3, 5
    sampler = make_distributed_sampler("ours", k, SimComm(p), seed=7, window=4 * p * batch)
    stream = TimestampedMiniBatchStream(p, batch, seed=8)
    for _ in range(3):  # warm into the steady state
        sampler.process_round(stream.next_round().batches)
    # each timing repeat consumes *fresh* rounds: stamps must keep increasing
    pending = iter(
        [stream.next_round().batches for _ in range(repeats * rounds_per_repeat)]
    )

    def run():
        for _ in range(rounds_per_repeat):
            sampler.process_round(next(pending))

    return rounds_per_repeat * p * batch / best_of(run, repeats=repeats)


def run_suite() -> dict:
    results = bench_sequential()
    results["distributed_window_round_items_per_s"] = bench_distributed_window_round()
    results["k"] = K
    results["batch"] = BATCH
    results["window"] = WINDOW
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_window.json"))
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the measured numbers (halved, to stay conservative) as the new baseline",
    )
    args = parser.parse_args(argv)

    results = run_suite()
    write_bench_json(args.output, results, bench="bench_window")
    for name, value in sorted(results.items()):
        if name.endswith("items_per_s"):
            print(f"  {name:44s} {value:>14,.0f} items/s")
        elif name.endswith("ratio"):
            print(f"  {name:44s} {value:>14.3f}x")

    if args.update_baseline:
        write_conservative_baseline(
            args.baseline,
            {name: value for name, value in results.items() if name.endswith("items_per_s")},
        )
        print(f"updated baseline {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update-baseline to create one")
        return 1
    failures = compare_to_baseline(results, load_baseline(args.baseline), args.max_regression)
    if failures:
        print("\nBENCHMARK REGRESSION:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(f"\nno regression (budget {args.max_regression:g}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

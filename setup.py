"""Setuptools entry point.

The environment this reproduction targets has no network access and an older
setuptools without the ``wheel`` package, so PEP 517 editable builds are not
available; this classic ``setup.py`` keeps ``pip install -e .`` working there.
Metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

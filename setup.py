"""Setuptools entry point (thin shim; metadata lives in ``pyproject.toml``).

On machines with a recent pip (e.g. CI) use ``pip install -e .`` directly.
The offline environment this reproduction targets ships an older setuptools
without the ``wheel`` package, so PEP 517 editable builds are not available
there; ``python setup.py develop`` is the working fallback.
"""

from setuptools import setup

setup()
